"""Flight recorder: bounded ring, dump triggers, byte-identical dumps."""

import hashlib

import pytest

from repro.obs.live import FlightRecorder, LiveConfig, LiveRecorder
from repro.obs.live.flight import (
    FLIGHT_SCHEMA,
    TRIGGER_DROPS,
    TRIGGER_MANUAL,
    TRIGGER_SLO,
    TRIGGER_STALL,
)
from repro.obs.runner import run_traced

pytestmark = pytest.mark.obs_live

#: Byte-stability pin for the seeded SLO-breach scenario below: the first
#: flight dump of ``run_traced("miodb", n=512, reads=64)`` with the live
#: plane at seed 1, a 10us stall alert, and a 5us SLO threshold.  If this
#: changes, either the simulation or the dump format changed -- both must
#: be deliberate.
PINNED_DUMP_SHA256 = (
    "06472fd580b428dbdcd659ff786c21921938e22a0dd3a9af6a6f88c5d88a1e1b"
)

LIVE = {"seed": 1, "stall_alert_s": 1e-5, "slo_threshold_s": 5e-6}


def test_ring_is_bounded():
    flight = FlightRecorder(capacity=8)
    for i in range(100):
        flight.ring.append(("op", "put", float(i), 1e-6))
    assert len(flight.ring) == 8
    assert flight.ring[0][2] == 92.0  # oldest surviving entry


def test_stall_trigger_fires_at_threshold():
    flight = FlightRecorder(capacity=16, stall_alert_s=1e-5)
    flight.on_stall("memtable-full", 1.0, 9e-6)  # below threshold
    assert not flight.dumps
    flight.on_stall("memtable-full", 2.0, 1e-5)  # at threshold
    assert [d["trigger"] for d in flight.dumps] == [TRIGGER_STALL]
    doc = flight.dumps[0]
    assert doc["schema"] == FLIGHT_SCHEMA
    assert doc["at_s"] == 2.0
    assert doc["detail"]["cause"] == "memtable-full"
    # The ring snapshot includes both stalls, in order.
    assert [entry[0] for entry in doc["ring"]] == ["stall", "stall"]


def test_drop_burst_trigger_needs_n_drops_within_window():
    flight = FlightRecorder(capacity=64, drop_burst_n=3, drop_burst_s=1e-3)
    flight.on_drop("queue_full", "c0", 0.0)
    flight.on_drop("queue_full", "c1", 2e-3)  # first drop aged out
    flight.on_drop("queue_full", "c2", 2.5e-3)
    assert not flight.dumps
    flight.on_drop("queue_full", "c3", 2.6e-3)  # third within 1ms
    assert [d["trigger"] for d in flight.dumps] == [TRIGGER_DROPS]
    assert flight.dumps[0]["detail"]["drops_in_window"] == 3


def test_slo_burn_trigger_needs_short_and_long_lookbacks():
    from repro.obs.analyze.slo import BurnRateRule, SloObjective

    flight = FlightRecorder(
        capacity=16,
        slo=SloObjective("t", 1e-6, 0.9),  # 10% error budget
        burn_rule=BurnRateRule(short_s=2e-3, long_s=10e-3, factor=2.0),
    )
    # 50% bad = 5x budget burn on both lookbacks once windows exist.
    flight.on_window(1e-3, 100, 50)
    assert [d["trigger"] for d in flight.dumps] == [TRIGGER_SLO]
    assert flight.dumps[0]["detail"]["burn_short"] == pytest.approx(5.0)


def test_dumps_are_capped_but_triggers_keep_counting():
    flight = FlightRecorder(capacity=8, stall_alert_s=0.0, max_dumps=2)
    for i in range(5):
        flight.on_stall("memtable-full", float(i), 1.0)
    assert len(flight.dumps) == 2  # oldest kept
    assert [d["at_s"] for d in flight.dumps] == [0.0, 1.0]
    assert flight.trigger_counts[TRIGGER_STALL] == 5


def test_manual_dump_always_returns_a_document():
    flight = FlightRecorder(capacity=8, max_dumps=0)
    doc = flight.dump_now(3.0)
    assert doc["trigger"] == TRIGGER_MANUAL
    assert not flight.dumps  # cap honoured
    assert flight.trigger_counts[TRIGGER_MANUAL] == 1


def test_seeded_slo_breach_dump_is_byte_identical_and_pinned():
    texts = []
    for __ in range(2):
        __, __, rec = run_traced("miodb", n=512, reads=64, live=dict(LIVE))
        dumps = rec.flight.dumps
        assert [d["trigger"] for d in dumps] == [
            "stall-alert", "stall-alert", "slo-burn", "stall-alert",
        ]
        texts.append(rec.flight.dump_json(dumps[0]))
    assert texts[0] == texts[1]
    digest = hashlib.sha256(texts[0].encode()).hexdigest()
    assert digest == PINNED_DUMP_SHA256


def test_dump_embeds_sampling_context():
    __, __, rec = run_traced("miodb", n=512, reads=64, live=dict(LIVE))
    doc = rec.flight.dumps[-1]
    context = doc["context"]
    assert context["sampling"]["ops_seen"] > 0
    assert isinstance(context["windows"], list)


def test_live_recorder_ring_stays_within_capacity():
    cfg = LiveConfig(flight_capacity=32)
    from repro.mem.system import HybridMemorySystem

    system = HybridMemorySystem()
    rec = LiveRecorder(system.clock, cfg).attach(system)
    for i in range(500):
        rec.span("foreground", "put", "op", i * 1e-6, i * 1e-6 + 1e-7)
    assert len(rec.flight.ring) == 32
    rec.detach()
