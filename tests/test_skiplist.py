"""Unit tests for the multi-version skip list."""

import pytest

from repro.sim.rng import XorShiftRng
from repro.skiplist.node import MAX_HEIGHT, TOMBSTONE, Node, random_height
from repro.skiplist.skiplist import SkipList


@pytest.fixture
def sl():
    return SkipList(XorShiftRng(1))


def put(sl, key, seq, value=b"v", vbytes=10):
    node, hops = sl.insert(key, seq, value, vbytes)
    return node


def test_empty_list(sl):
    assert sl.is_empty
    assert len(sl) == 0
    assert sl.get(b"a") == (None, 0)
    assert sl.key_range() is None


def test_insert_and_get(sl):
    put(sl, b"a", 1)
    node, hops = sl.get(b"a")
    assert node.key == b"a"
    assert node.seq == 1
    assert hops >= 0


def test_get_missing_key(sl):
    put(sl, b"a", 1)
    put(sl, b"c", 2)
    node, __ = sl.get(b"b")
    assert node is None


def test_versions_newest_first(sl):
    put(sl, b"k", 1, value=b"old")
    put(sl, b"k", 5, value=b"new")
    put(sl, b"k", 3, value=b"mid")
    node, __ = sl.get(b"k")
    assert node.seq == 5
    versions = [n.seq for n in sl.nodes()]
    assert versions == [5, 3, 1]


def test_snapshot_get(sl):
    put(sl, b"k", 1, value=b"old")
    put(sl, b"k", 5, value=b"new")
    node, __ = sl.get(b"k", max_seq=3)
    assert node.seq == 1


def test_duplicate_key_seq_rejected(sl):
    put(sl, b"k", 1)
    with pytest.raises(ValueError):
        put(sl, b"k", 1)


def test_nodes_in_key_order(sl):
    for i, key in enumerate([b"d", b"a", b"c", b"b"]):
        put(sl, key, i + 1)
    assert [n.key for n in sl.nodes()] == [b"a", b"b", b"c", b"d"]


def test_items_newest_live_versions_only(sl):
    put(sl, b"a", 1, value=b"a1")
    put(sl, b"a", 2, value=b"a2")
    put(sl, b"b", 3, value=TOMBSTONE, vbytes=0)
    put(sl, b"c", 4, value=b"c1")
    assert list(sl.items()) == [(b"a", b"a2"), (b"c", b"c1")]
    with_tombs = list(sl.items(include_tombstones=True))
    assert (b"b", TOMBSTONE) in with_tombs


def test_first_ge(sl):
    put(sl, b"b", 1)
    put(sl, b"d", 2)
    node, __ = sl.first_ge(b"c")
    assert node.key == b"d"
    node, __ = sl.first_ge(b"b")
    assert node.key == b"b"
    node, __ = sl.first_ge(b"e")
    assert node is None


def test_key_range(sl):
    for i, key in enumerate([b"m", b"a", b"z", b"q"]):
        put(sl, key, i + 1)
    assert sl.key_range() == (b"a", b"z")


def test_data_bytes_accounting(sl):
    node = put(sl, b"abc", 1, vbytes=100)
    assert sl.data_bytes == node.nbytes
    assert node.nbytes == 3 + 100 + 64  # key + value + overhead


def test_unlink_moves_bytes_to_garbage(sl):
    node = put(sl, b"a", 1)
    preds = sl.predecessors_of(node)
    sl.unlink(node, preds)
    assert sl.is_empty
    assert sl.data_bytes == 0
    assert sl.garbage_bytes == node.nbytes
    assert sl.footprint_bytes == node.nbytes
    assert sl.reclaim_garbage() == node.nbytes
    assert sl.footprint_bytes == 0


def test_unlink_without_garbage(sl):
    node = put(sl, b"a", 1)
    sl.unlink(node, sl.predecessors_of(node), to_garbage=False)
    assert sl.garbage_bytes == 0


def test_unlink_with_stale_preds_rejected(sl):
    a = put(sl, b"a", 1)
    put(sl, b"b", 2)
    bad_preds = [sl.head] * MAX_HEIGHT
    sl.unlink(a, sl.predecessors_of(a))
    with pytest.raises(ValueError):
        sl.unlink(a, bad_preds)


def test_predecessors_of_unlinked_node_rejected(sl):
    a = put(sl, b"a", 1)
    sl.unlink(a, sl.predecessors_of(a))
    with pytest.raises(ValueError):
        sl.predecessors_of(a)


def test_update_in_place(sl):
    node = put(sl, b"a", 1, value=b"old", vbytes=10)
    delta = sl.update_in_place(node, 5, b"new", 30)
    assert delta == 20
    assert node.seq == 5
    assert node.value == b"new"
    assert sl.data_bytes == node.nbytes


def test_update_in_place_rejects_multiversion(sl):
    put(sl, b"a", 2)
    node, __ = sl.get(b"a")
    put(sl, b"a", 1)
    newest, __ = sl.get(b"a")
    with pytest.raises(ValueError):
        sl.update_in_place(newest, 9, b"x", 1)


def test_update_in_place_rejects_seq_regression(sl):
    node = put(sl, b"a", 5)
    with pytest.raises(ValueError):
        sl.update_in_place(node, 4, b"x", 1)


def test_random_height_distribution():
    rng = XorShiftRng(7)
    heights = [random_height(rng) for _ in range(4000)]
    assert min(heights) == 1
    assert max(heights) <= MAX_HEIGHT
    ones = sum(1 for h in heights if h == 1)
    assert 0.65 < ones / len(heights) < 0.85  # P(h=1) = 3/4


def test_node_height_bounds():
    with pytest.raises(ValueError):
        Node(b"k", 1, b"v", 10, 0)
    with pytest.raises(ValueError):
        Node(b"k", 1, b"v", 10, MAX_HEIGHT + 1)


def test_precedes_ordering():
    a1 = Node(b"a", 1, b"v", 10, 1)
    assert a1.precedes(b"b", 0)
    assert not a1.precedes(b"a", 5)  # seq 1 sorts after seq 5
    assert a1.precedes(b"a", 0)


def test_large_insert_lookup_roundtrip(sl):
    keys = [b"k%04d" % i for i in range(500)]
    rng = XorShiftRng(13)
    order = list(range(500))
    rng.shuffle(order)
    for seq, idx in enumerate(order, start=1):
        put(sl, keys[idx], seq)
    assert len(sl) == 500
    for key in keys:
        node, __ = sl.get(key)
        assert node is not None and node.key == key
    assert [n.key for n in sl.nodes()] == sorted(keys)
