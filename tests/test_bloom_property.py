"""Property-based tests for bloom filter invariants."""

from hypothesis import given, strategies as st

from repro.bloom.filter import BloomFilter

key_lists = st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=50)


@given(key_lists)
def test_never_false_negative(keys):
    bloom = BloomFilter(4096, 5)
    bloom.add_all(keys)
    for key in keys:
        assert bloom.may_contain(key)


@given(key_lists, key_lists)
def test_merge_never_loses_membership(a_keys, b_keys):
    a = BloomFilter(4096, 5)
    b = BloomFilter(4096, 5)
    a.add_all(a_keys)
    b.add_all(b_keys)
    a.merge_from(b)
    for key in a_keys + b_keys:
        assert a.may_contain(key)


@given(key_lists, key_lists)
def test_merge_is_commutative_on_bits(a_keys, b_keys):
    a1, b1 = BloomFilter(2048, 4), BloomFilter(2048, 4)
    a2, b2 = BloomFilter(2048, 4), BloomFilter(2048, 4)
    a1.add_all(a_keys)
    b1.add_all(b_keys)
    a2.add_all(a_keys)
    b2.add_all(b_keys)
    a1.merge_from(b1)
    b2.merge_from(a2)
    assert a1._words == b2._words


@given(key_lists)
def test_saturation_monotone(keys):
    bloom = BloomFilter(2048, 4)
    last = 0.0
    for key in keys:
        bloom.add(key)
        sat = bloom.saturation
        assert sat >= last
        last = sat
    assert 0.0 <= last <= 1.0
