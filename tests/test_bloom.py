"""Unit tests for mergeable bloom filters."""

import pytest

from repro.bloom.filter import BloomFilter
from repro.bloom.hashing import double_hashes, fnv1a_64


def test_no_false_negatives():
    bloom = BloomFilter.for_capacity(200, bits_per_key=16)
    keys = [b"key-%d" % i for i in range(200)]
    bloom.add_all(keys)
    for key in keys:
        assert bloom.may_contain(key)


def test_absent_keys_mostly_rejected():
    bloom = BloomFilter.for_capacity(200, bits_per_key=16)
    bloom.add_all(b"key-%d" % i for i in range(200))
    false_pos = sum(
        1 for i in range(1000) if bloom.may_contain(b"absent-%d" % i)
    )
    assert false_pos < 30  # 16 bits/key => fp well under 1%, allow slack


def test_empty_filter_rejects_everything():
    bloom = BloomFilter(1024, 4)
    assert not bloom.may_contain(b"anything")
    assert bloom.saturation == 0.0


def test_merge_is_union():
    a = BloomFilter(2048, 5)
    b = BloomFilter(2048, 5)
    a.add(b"only-a")
    b.add(b"only-b")
    a.merge_from(b)
    assert a.may_contain(b"only-a")
    assert a.may_contain(b"only-b")
    assert a.added == 2


def test_merge_requires_same_geometry():
    a = BloomFilter(1024, 4)
    b = BloomFilter(2048, 4)
    with pytest.raises(ValueError):
        a.merge_from(b)
    c = BloomFilter(1024, 5)
    with pytest.raises(ValueError):
        a.merge_from(c)


def test_merge_degrades_fp_rate():
    """The Figure 9 effect: merged (bigger) tables saturate the filter."""
    base = BloomFilter.for_capacity(100, bits_per_key=16)
    base.add_all(b"a-%d" % i for i in range(100))
    fp_before = base.false_positive_rate()
    for gen in range(8):
        other = BloomFilter(base.nbits, base.k)
        other.add_all(b"g%d-%d" % (gen, i) for i in range(100))
        base.merge_from(other)
    assert base.false_positive_rate() > fp_before


def test_for_capacity_rejects_bad_input():
    with pytest.raises(ValueError):
        BloomFilter.for_capacity(0)


def test_constructor_validation():
    with pytest.raises(ValueError):
        BloomFilter(0, 1)
    with pytest.raises(ValueError):
        BloomFilter(8, 0)


def test_nbytes():
    assert BloomFilter(1024, 4).nbytes == 128


def test_expected_fp_rate_monotone_in_keys():
    low = BloomFilter.expected_fp_rate(10, 1024, 7)
    high = BloomFilter.expected_fp_rate(1000, 1024, 7)
    assert 0 <= low < high <= 1


def test_fnv_hash_deterministic_and_seeded():
    assert fnv1a_64(b"hello") == fnv1a_64(b"hello")
    assert fnv1a_64(b"hello", seed=1) != fnv1a_64(b"hello", seed=2)


def test_double_hashes_positions_in_range():
    positions = double_hashes(b"key", 7, 100)
    assert len(positions) == 7
    assert all(0 <= p < 100 for p in positions)


def test_double_hashes_rejects_bad_nbits():
    with pytest.raises(ValueError):
        double_hashes(b"k", 3, 0)
