"""Tests for shard placement policies (hash ring, range partitioning)."""

import pytest

from repro.cluster import (
    PLACEMENT_POLICIES,
    HashRingPlacement,
    RangePlacement,
    make_placement,
)
from repro.cluster.placement import ring_hash
from repro.workloads.keys import key_for

pytestmark = pytest.mark.cluster_smoke


def test_registry_names():
    assert set(PLACEMENT_POLICIES) == {"hash-ring", "range"}


def test_ring_hash_spreads_sequential_keys():
    # Sequential keys differ only in trailing digits; the finalizer must
    # still spread them across the 64-bit space (this is the property
    # plain FNV-1a lacks and the ring's balance depends on).
    hashes = sorted(ring_hash(key_for(i)) for i in range(1000))
    span = 1 << 64
    largest_gap = max(
        (b - a for a, b in zip(hashes, hashes[1:])),
        default=span,
    )
    assert largest_gap < span // 50


def test_hash_ring_balance_uniform_keys():
    placement = HashRingPlacement(4)
    counts = [0] * 4
    for i in range(8000):
        counts[placement.shard_for(key_for(i))] += 1
    assert min(counts) > 0.5 * (8000 / 4)
    assert max(counts) < 1.6 * (8000 / 4)


def test_hash_ring_deterministic():
    a = HashRingPlacement(4)
    b = HashRingPlacement(4)
    for i in range(500):
        assert a.locate(key_for(i)) == b.locate(key_for(i))


def test_hash_ring_slots_partition_the_ring():
    placement = HashRingPlacement(3, vnodes_per_shard=8)
    slots = [p for shard in range(3) for p in placement.slots_of(shard)]
    assert sorted(slots) == placement._points
    assert len(slots) == 3 * 8


def test_move_slot_reroutes_only_that_arc():
    placement = HashRingPlacement(4)
    keys = [key_for(i) for i in range(2000)]
    before = {k: placement.locate(k) for k in keys}
    victim = placement.slots_of(0)[0]
    assert placement.move_slot(victim, 2) == 0
    for k in keys:
        slot, shard = placement.locate(k)
        if before[k][0] == victim:
            assert shard == 2
        else:
            assert (slot, shard) == before[k]


def test_move_slot_validation():
    placement = HashRingPlacement(2)
    with pytest.raises(KeyError):
        placement.move_slot(12345, 1)
    with pytest.raises(ValueError):
        placement.move_slot(placement._points[0], 2)


def test_range_placement_split():
    placement = RangePlacement.for_key_space(4, 1000)
    assert placement.shard_for(key_for(0)) == 0
    assert placement.shard_for(key_for(250)) == 1
    assert placement.shard_for(key_for(999)) == 3
    # keys past the keyspace still land on the last shard
    assert placement.shard_for(key_for(10**6)) == 3


def test_range_placement_preserves_locality():
    placement = RangePlacement.for_key_space(4, 1000)
    shards = [placement.shard_for(key_for(i)) for i in range(1000)]
    assert shards == sorted(shards)


def test_range_placement_validation():
    with pytest.raises(ValueError):
        RangePlacement(3, [b"b", b"a"])  # not ascending
    with pytest.raises(ValueError):
        RangePlacement(3, [b"a"])  # wrong boundary count
    with pytest.raises(ValueError):
        RangePlacement.for_key_space(8, 4)  # key space too small


def test_make_placement():
    assert isinstance(make_placement("hash-ring", 4), HashRingPlacement)
    assert isinstance(
        make_placement("range", 4, key_space=1000), RangePlacement
    )
    with pytest.raises(ValueError):
        make_placement("range", 4)  # key_space required
    with pytest.raises(ValueError):
        make_placement("nope", 4)


def test_describe_is_json_friendly():
    import json

    for placement in (
        HashRingPlacement(4),
        RangePlacement.for_key_space(4, 100),
    ):
        doc = placement.describe()
        assert doc["policy"] == placement.name
        json.dumps(doc)
