"""Unit tests for arenas, WAL, and crash injection."""

import pytest

from repro.mem.device import Device
from repro.mem.profiles import OPTANE_NVM_PROFILE
from repro.persist.arena import Arena, ArenaPool
from repro.persist.crash import CrashInjector, SimulatedCrash
from repro.persist.wal import RECORD_HEADER_BYTES, WriteAheadLog


@pytest.fixture
def nvm():
    return Device(OPTANE_NVM_PROFILE)


# ----------------------------------------------------------------- arenas


def test_arena_allocates_on_creation(nvm):
    Arena(nvm, 1000)
    assert nvm.bytes_in_use == 1000


def test_arena_release_is_idempotent(nvm):
    arena = Arena(nvm, 1000)
    assert arena.release() == 1000
    assert arena.release() == 0
    assert nvm.bytes_in_use == 0


def test_arena_grow_and_shrink(nvm):
    arena = Arena(nvm, 100)
    arena.grow(50)
    assert arena.size == 150
    assert nvm.bytes_in_use == 150
    arena.shrink(120)
    assert arena.size == 30
    assert nvm.bytes_in_use == 30


def test_arena_shrink_beyond_size_rejected(nvm):
    arena = Arena(nvm, 100)
    with pytest.raises(ValueError):
        arena.shrink(101)


def test_arena_operations_after_release_rejected(nvm):
    arena = Arena(nvm, 100)
    arena.release()
    with pytest.raises(ValueError):
        arena.grow(1)
    with pytest.raises(ValueError):
        arena.shrink(1)


def test_arena_negative_size_rejected(nvm):
    with pytest.raises(ValueError):
        Arena(nvm, -1)


def test_arena_pool_live_bytes(nvm):
    pool = ArenaPool()
    a = pool.create(nvm, 100)
    pool.create(nvm, 200)
    assert pool.live_bytes() == 300
    a.release()
    assert pool.live_bytes() == 200
    pool.prune()
    assert len(pool.arenas) == 1


# -------------------------------------------------------------------- WAL


def test_wal_append_charges_device_and_space(nvm):
    wal = WriteAheadLog(nvm)
    seconds = wal.append(1, b"key", b"value", 5)
    expected = RECORD_HEADER_BYTES + 3 + 5
    assert seconds > 0
    assert nvm.bytes_written == expected
    assert wal.live_bytes == expected
    assert wal.record_count == 1


def test_wal_replay_in_order(nvm):
    wal = WriteAheadLog(nvm)
    for i in range(5):
        wal.append(i + 1, b"k%d" % i, b"v", 1)
    assert [r.seq for r in wal.replay()] == [1, 2, 3, 4, 5]


def test_wal_truncate_through(nvm):
    wal = WriteAheadLog(nvm)
    for i in range(5):
        wal.append(i + 1, b"k%d" % i, b"v", 1)
    freed = wal.truncate_through(3)
    assert freed > 0
    assert [r.seq for r in wal.replay()] == [4, 5]
    assert nvm.bytes_in_use == wal.live_bytes


def test_wal_torn_tail_stops_replay(nvm):
    wal = WriteAheadLog(nvm)
    for i in range(4):
        wal.append(i + 1, b"k%d" % i, b"v", 1)
    wal.tear_tail(2)
    assert [r.seq for r in wal.replay()] == [1, 2]
    assert wal.last_seq() == 2


def test_wal_last_seq_empty(nvm):
    assert WriteAheadLog(nvm).last_seq() is None


# ------------------------------------------------------------------ crash


def test_unarmed_crash_point_is_noop():
    injector = CrashInjector()
    injector.reach("flush.after_copy")
    assert injector.hits("flush.after_copy") == 1


def test_armed_point_fires_on_nth_hit():
    injector = CrashInjector()
    injector.arm("p", after_hits=3)
    injector.reach("p")
    injector.reach("p")
    with pytest.raises(SimulatedCrash) as exc:
        injector.reach("p")
    assert exc.value.point == "p"


def test_crash_point_is_single_shot():
    injector = CrashInjector()
    injector.arm("p")
    with pytest.raises(SimulatedCrash):
        injector.reach("p")
    injector.reach("p")  # does not fire again


def test_disarm():
    injector = CrashInjector()
    injector.arm("p")
    injector.disarm("p")
    injector.reach("p")
    injector.arm("a")
    injector.arm("b")
    injector.disarm()
    injector.reach("a")
    injector.reach("b")


def test_arm_validation():
    with pytest.raises(ValueError):
        CrashInjector().arm("p", after_hits=0)


def test_disarm_none_clears_every_point_but_keeps_hit_counts():
    injector = CrashInjector()
    injector.arm("a")
    injector.arm("b", after_hits=2)
    injector.reach("b")  # one hit below the trigger
    injector.disarm(None)
    injector.reach("a")
    injector.reach("b")  # would have fired at hit 2 if still armed
    assert injector.hits("a") == 1
    assert injector.hits("b") == 2


def test_rearm_after_fire_counts_cumulative_hits():
    injector = CrashInjector()
    injector.arm("p")
    with pytest.raises(SimulatedCrash):
        injector.reach("p")
    # Hit counts are cumulative across re-arms: the trigger is "fire on
    # the Nth total hit", so a re-arm must aim past the hits already
    # taken.  Two hits from now means after_hits = hits + 2.
    injector.arm("p", after_hits=injector.hits("p") + 2)
    injector.reach("p")  # hit 2 of 3: survives
    with pytest.raises(SimulatedCrash):
        injector.reach("p")  # hit 3: fires
    injector.reach("p")  # single-shot again after firing


def test_rearm_below_current_hits_fires_on_next_reach():
    injector = CrashInjector()
    for __ in range(5):
        injector.reach("p")
    injector.arm("p", after_hits=3)  # already past the threshold
    with pytest.raises(SimulatedCrash):
        injector.reach("p")


def _drive_until_crash(store, n=4000):
    from repro.kvstore.values import SizedValue

    try:
        for i in range(n):
            store.put(b"key%06d" % (i % 300), SizedValue(i, 512))
    except SimulatedCrash as crash:
        return crash
    return None


def test_crash_point_fires_from_inside_executor_job():
    """``flush.after_copy`` is reached inside the flush job's completion
    callback, which the executor runs when simulated time passes the job
    deadline -- the crash must propagate out of the store's settle."""
    from repro.core import MioDB, MioOptions
    from repro.mem.system import HybridMemorySystem

    injector = CrashInjector()
    injector.arm("flush.after_copy")
    store = MioDB(
        HybridMemorySystem(),
        MioOptions(memtable_bytes=4 * (1 << 10), num_levels=3),
        crash_injector=injector,
    )
    crash = _drive_until_crash(store)
    assert crash is not None and crash.point == "flush.after_copy"
    assert injector.hits("flush.after_copy") == 1


def test_rearm_sequencing_across_executor_jobs():
    """Fire one flush crash, recover, re-arm a *different* flush point on
    the recovered store, and verify it fires too -- the injector's state
    machine survives the crash/recover cycle."""
    from repro.core import MioDB, MioOptions, recover
    from repro.mem.system import HybridMemorySystem

    injector = CrashInjector()
    injector.arm("flush.after_copy")
    store = MioDB(
        HybridMemorySystem(),
        MioOptions(memtable_bytes=4 * (1 << 10), num_levels=3),
        crash_injector=injector,
    )
    crash = _drive_until_crash(store)
    assert crash is not None
    recovered, __ = recover(store)
    injector.arm(
        "flush.after_swizzle", after_hits=injector.hits("flush.after_swizzle") + 1
    )
    crash = _drive_until_crash(recovered)
    assert crash is not None and crash.point == "flush.after_swizzle"


def test_rearm_resets_pending_hit_count():
    """Regression: ``arm()`` aims at *cumulative* hits, so re-arming a
    point that had already taken hits below its old threshold fired
    earlier than intended on reuse.  ``rearm()`` zeroes the pending
    count first -- chaos schedules reuse one injector across rounds."""
    injector = CrashInjector()
    injector.arm("p", after_hits=2)
    injector.reach("p")  # hit 1 of 2: pending
    injector.rearm("p", after_hits=2)
    injector.reach("p")  # hit 1 of 2 again: must survive
    with pytest.raises(SimulatedCrash):
        injector.reach("p")


def test_rearm_after_fire_is_fresh_one_shot():
    injector = CrashInjector()
    injector.arm("p")
    with pytest.raises(SimulatedCrash):
        injector.reach("p")
    injector.rearm("p")
    with pytest.raises(SimulatedCrash):
        injector.reach("p")
    assert injector.hits("p") == 1  # counts restarted from zero


def test_rearm_validation():
    with pytest.raises(ValueError):
        CrashInjector().rearm("p", after_hits=0)


def test_reset_clears_one_point_or_all():
    injector = CrashInjector()
    injector.arm("a", after_hits=3)
    injector.reach("a")
    injector.reset("a")
    assert injector.hits("a") == 0
    injector.reach("a")
    injector.reach("a")
    injector.reach("a")  # disarmed: never fires
    injector.arm("b")
    injector.reach("x")
    injector.reset()
    assert injector.hits("x") == 0
    injector.reach("b")  # cleared by the full reset


# --------------------------------------------------- WAL fsync policies


def test_parse_fsync_policy():
    from repro.persist.wal import parse_fsync_policy

    assert parse_fsync_policy("sync") == ("sync", 0.0)
    assert parse_fsync_policy("batch:8") == ("batch", 8.0)
    assert parse_fsync_policy("interval:0.001") == ("interval", 0.001)
    for bad in ("batch", "batch:0", "interval:-1", "fsync", "batch:x"):
        with pytest.raises(ValueError):
            parse_fsync_policy(bad)


def test_batch_fsync_groups_device_writes(nvm):
    wal = WriteAheadLog(nvm, fsync_policy="batch:3")
    assert wal.append(1, b"a", b"v", 1) == 0.0
    assert wal.append(2, b"b", b"v", 1) == 0.0
    assert wal.pending_count == 2
    assert nvm.bytes_written == 0
    cost = wal.append(3, b"c", b"v", 1)  # third buffered record: group commit
    assert cost > 0.0
    assert wal.pending_count == 0
    assert nvm.bytes_written == 3 * (RECORD_HEADER_BYTES + 1 + 1)
    assert wal.last_synced_seq() == 3


def test_unsynced_records_do_not_survive_a_crash(nvm):
    wal = WriteAheadLog(nvm, fsync_policy="batch:4")
    wal.append(1, b"a", b"v", 1)
    wal.append(2, b"b", b"v", 1)
    wal.sync()
    wal.append(3, b"c", b"v", 1)  # buffered, never synced
    assert [r.seq for r in wal.replay()] == [1, 2]  # replay skips unsynced
    assert wal.crash_drop_unsynced() == 1
    assert [r.seq for r in wal.replay()] == [1, 2]
    assert wal.record_count == 2


def test_interval_fsync_follows_the_clock():
    from repro.sim.clock import SimClock

    clock = SimClock()
    nvm = Device(OPTANE_NVM_PROFILE)
    wal = WriteAheadLog(nvm, fsync_policy="interval:0.001", clock=clock)
    assert wal.append(1, b"a", b"v", 1) == 0.0
    clock.advance(0.0005)
    assert wal.append(2, b"b", b"v", 1) == 0.0  # window still open
    clock.advance(0.0006)
    assert wal.append(3, b"c", b"v", 1) > 0.0  # window expired: commit
    assert wal.pending_count == 0
    assert wal.last_synced_seq() == 3


def test_interval_fsync_requires_a_clock(nvm):
    with pytest.raises(ValueError):
        WriteAheadLog(nvm, fsync_policy="interval:0.001")


def test_truncate_prunes_unsynced_pending(nvm):
    wal = WriteAheadLog(nvm, fsync_policy="batch:10")
    wal.append(1, b"a", b"v", 1)
    wal.sync()
    wal.append(2, b"b", b"v", 1)
    wal.truncate_through(2)  # covers the buffered record too
    assert wal.pending_count == 0
    assert wal.record_count == 0


def test_records_since_is_a_shipping_cursor(nvm):
    wal = WriteAheadLog(nvm)
    for i in range(5):
        wal.append(i + 1, b"k%d" % i, b"v", 1)
    assert [r.seq for r in wal.records_since(0)] == [1, 2, 3, 4, 5]
    assert [r.seq for r in wal.records_since(3)] == [4, 5]
    assert wal.records_since(5) == []
