"""Failure-injection tests: crash MioDB at interesting points, recover,
and verify no acknowledged write is lost (paper Section 4.7)."""

import pytest

from repro.core import MioDB, MioOptions, recover
from repro.kvstore.values import SizedValue
from repro.mem.system import HybridMemorySystem
from repro.persist.crash import CrashInjector, SimulatedCrash

KB = 1 << 10


def run_until_crash(store, injector, point, after_hits, n=3000, key_space=500):
    """Write until the armed crash fires.

    Returns ``(acked, crashed, inflight)`` where ``inflight`` is the
    (key, tag) of the write interrupted by the crash -- it was never
    acknowledged, so recovery may legally surface either version.
    """
    acked = {}
    try:
        for i in range(n):
            key = b"key%06d" % ((i * 7919) % key_space)
            store.put(key, SizedValue(i, 512))
            acked[key] = i
    except SimulatedCrash:
        return acked, True, (key, i)
    return acked, False, None


def make_store(point, after_hits):
    system = HybridMemorySystem()
    injector = CrashInjector()
    injector.arm(point, after_hits)
    options = MioOptions(memtable_bytes=4 * KB, num_levels=3)
    return MioDB(system, options, crash_injector=injector), injector


def verify_all_present(store, acked, inflight=None):
    """Every acknowledged write is present and newest; the single
    unacknowledged in-flight write may legally surface instead."""
    for key, tag in acked.items():
        value, __ = store.get(key)
        assert value is not None, key
        if inflight is not None and key == inflight[0]:
            assert value.tag in (tag, inflight[1]), (key, value.tag)
        else:
            assert value.tag == tag, (key, value.tag, tag)


@pytest.mark.parametrize("after_hits", [50, 500, 1500, 2500])
def test_crash_after_wal_append_loses_nothing_acked(after_hits):
    store, injector = make_store("put.after_wal", after_hits)
    acked, crashed, inflight = run_until_crash(
        store, injector, "put.after_wal", after_hits
    )
    assert crashed
    recovered, seconds = recover(store)
    assert seconds >= 0
    verify_all_present(recovered, acked, inflight)


@pytest.mark.parametrize("after_hits", [1, 3, 10])
def test_crash_between_copy_and_swizzle(after_hits):
    store, injector = make_store("flush.after_copy", after_hits)
    acked, crashed, inflight = run_until_crash(
        store, injector, "flush.after_copy", after_hits
    )
    assert crashed
    recovered, __ = recover(store)
    verify_all_present(recovered, acked, inflight)


@pytest.mark.parametrize("after_hits", [1, 5, 12])
def test_crash_right_after_swizzle(after_hits):
    store, injector = make_store("flush.after_swizzle", after_hits)
    acked, crashed, inflight = run_until_crash(
        store, injector, "flush.after_swizzle", after_hits
    )
    assert crashed
    recovered, __ = recover(store)
    verify_all_present(recovered, acked, inflight)


def test_recovered_store_accepts_new_writes():
    store, injector = make_store("put.after_wal", 800)
    acked, __crashed, inflight = run_until_crash(store, injector, "put.after_wal", 800)
    recovered, __ = recover(store)
    recovered.put(b"after-crash", SizedValue("fresh", 128))
    value, __ = recovered.get(b"after-crash")
    assert value.tag == "fresh"
    recovered.quiesce()
    verify_all_present(recovered, acked, inflight)


def test_recovery_replays_only_wal_tail():
    store, injector = make_store("put.after_wal", 2000)
    acked, __crashed, __inflight = run_until_crash(store, injector, "put.after_wal", 2000)
    system = store.system
    recovered, __ = recover(store)
    replayed = system.stats.get("recover.replayed")
    assert 0 < replayed < len(acked)  # most data came from PMTables, not WAL


def test_torn_wal_tail_is_skipped():
    store, injector = make_store("put.after_wal", 600)
    acked, __crashed, __inflight = run_until_crash(store, injector, "put.after_wal", 600)
    # the in-flight record was only partially written
    store.wal.tear_tail(1)
    recovered, __ = recover(store)
    # every key except possibly the torn one must be intact and newest
    torn_ok = 0
    for key, tag in acked.items():
        value, __lat = recovered.get(key)
        if value is None or value.tag != tag:
            torn_ok += 1
    assert torn_ok <= 1


def test_double_crash_and_recover():
    store, injector = make_store("put.after_wal", 700)
    acked, __crashed, first = run_until_crash(store, injector, "put.after_wal", 700)
    # the first crash's unacknowledged write survived in the WAL and was
    # replayed by the first recovery, so it is now durable state
    if first is not None:
        acked[first[0]] = first[1]
    recovered, __ = recover(store)
    injector.arm("put.after_wal", 300)
    more, crashed, inflight = run_until_crash(recovered, injector, "put.after_wal", 300)
    assert crashed
    acked.update(more)
    final, __ = recover(recovered)
    verify_all_present(final, acked, inflight)


@pytest.mark.parametrize("point", ["compact.after_zero_copy", "compact.after_lazy_copy"])
@pytest.mark.parametrize("after_hits", [1, 4])
def test_crash_around_compactions(point, after_hits):
    """Zero-copy merges are made of atomic pointer writes and lazy copies
    are idempotent inserts, so a crash at a compaction boundary must
    leave a fully readable store (paper Section 4.7)."""
    store, injector = make_store(point, after_hits)
    acked, crashed, inflight = run_until_crash(store, injector, point, after_hits)
    if not crashed:
        pytest.skip(f"{point} not reached {after_hits} times at this scale")
    recovered, __ = recover(store)
    verify_all_present(recovered, acked, inflight)
    from repro.core.verifier import verify_store

    verify_store(recovered)


def test_recovery_preserves_sequence_monotonicity():
    store, injector = make_store("put.after_wal", 500)
    acked, __crashed, __inflight = run_until_crash(store, injector, "put.after_wal", 500)
    recovered, __ = recover(store)
    old_seq = recovered.seq
    recovered.put(b"k-new", SizedValue(1, 64))
    assert recovered.seq == old_seq + 1
    # the new write must shadow any replayed version
    recovered.put(next(iter(acked)), SizedValue("winner", 64))
    value, __ = recovered.get(next(iter(acked)))
    assert value.tag == "winner"
