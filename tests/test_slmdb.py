"""Behavioural tests for the SLM-DB baseline."""

import pytest

from repro.baselines import SLMDBOptions, SLMDBStore
from repro.kvstore.values import SizedValue

KB = 1 << 10


@pytest.fixture
def options():
    return SLMDBOptions(
        memtable_bytes=8 * KB, compaction_trigger_tables=4, compaction_fanin=3
    )


def fill(store, n, value_size=256, key_space=None):
    space = key_space or n
    for i in range(n):
        store.put(b"key%06d" % ((i * 7919) % space), SizedValue(i, value_size))


def test_single_level_structure(system, options):
    store = SLMDBStore(system, options)
    fill(store, 600)
    store.quiesce()
    # tables form one flat level; compaction keeps the count bounded
    assert 0 < len(store.tables) <= options.compaction_trigger_tables + 2
    assert store.compactions_done >= 1


def test_index_points_reads_at_one_table(system, options):
    store = SLMDBStore(system, options)
    fill(store, 400, key_space=150)
    store.quiesce()
    for i in range(150):
        value, __ = store.get(b"key%06d" % i)
        assert value is not None, i
    assert len(store.index) == 150


def test_index_survives_compactions(system, options):
    store = SLMDBStore(system, options)
    for round_ in range(5):
        for i in range(120):
            store.put(b"key%06d" % i, SizedValue((round_, i), 256))
        store.quiesce()
    for i in range(120):
        value, __ = store.get(b"key%06d" % i)
        assert value.tag == (4, i)
    store.index.check_invariants()


def test_deletes_remove_index_entries(system, options):
    store = SLMDBStore(system, options)
    fill(store, 300, key_space=100)
    for i in range(0, 100, 2):
        store.delete(b"key%06d" % i)
    # force enough traffic that compaction processes the tombstones
    fill(store, 400, key_space=50)
    store.quiesce()
    for i in range(50, 100, 2):
        value, __ = store.get(b"key%06d" % i)
        assert value is None


def test_flush_and_compaction_serialize(system, options):
    store = SLMDBStore(system, options)
    fill(store, 1200)
    # single background worker: flushes + compactions never overlap
    worker_names = {w.name for w in system.executor.workers if "slmdb" in w.name}
    assert worker_names == {"slmdb-background"}
    assert system.stats.get("stall.interval_s") >= 0.0


def test_slmdb_slower_writes_than_miodb(options):
    from repro.core import MioDB, MioOptions
    from repro.mem.system import HybridMemorySystem

    results = {}
    for name in ("slmdb", "miodb"):
        system = HybridMemorySystem()
        if name == "slmdb":
            store = SLMDBStore(system, options)
        else:
            store = MioDB(system, MioOptions(memtable_bytes=8 * KB, num_levels=4))
        fill(store, 1500, value_size=1024)
        results[name] = system.now
    assert results["miodb"] < results["slmdb"]


def test_scan_merges_memtable_and_tables(system, options):
    store = SLMDBStore(system, options)
    for i in range(200):
        store.put(b"key%06d" % i, SizedValue(i, 256))
    pairs, __ = store.scan(b"key000050", 8)
    assert [k for k, __v in pairs] == [b"key%06d" % i for i in range(50, 58)]


def test_index_arena_accounts_nvm(system, options):
    store = SLMDBStore(system, options)
    fill(store, 500)
    store.quiesce()
    assert store.index_arena.size > 0
    assert system.nvm.bytes_in_use >= store.index_arena.size
