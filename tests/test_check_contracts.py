"""API-contract checker: the engines conform, and drift is caught.

``DriftedStore`` below is the deliberately broken subclass from the
issue: a renamed parameter on a public method and an unregistered
``multi_*`` path.  The checker must flag exactly those, while every
registered engine and the pinned trace-event schema pass clean.
"""

import pytest

from repro.bench.factory import STORE_NAMES
from repro.check.contracts import (
    ENGINE_HOOKS,
    PINNED_EVENT_SCHEMA,
    PUBLIC_API,
    check_contracts,
    check_event_schema,
    check_store_class,
    schema_fingerprint,
    store_classes,
)
from repro.kvstore.api import BATCH_EQUIVALENCE, KVStore
from repro.obs.events import STALL_CAUSES, TraceEvent


class _ConformingStore(KVStore):
    """A minimal subclass that satisfies the whole contract."""

    name = "conforming"

    def _put(self, key, seq, value, value_bytes):
        return 0.0

    def _get(self, key):
        return None, 0.0

    def _scan(self, start_key, count):
        return [], 0.0


class DriftedStore(_ConformingStore):
    """Deliberate contract drift, each kind asserted on below."""

    name = "drifted"

    # API001: first parameter renamed from `key`.
    def put(self, k, value):
        return 0.0

    # API001: extra parameter without a default.
    def get(self, key, flavor):
        return None, 0.0

    # API002: a batched path with no registered per-op oracle.
    def multi_upsert(self, items):
        return []


def _messages(findings):
    return [f"{f.rule}: {f.message}" for f in findings]


# ---------------------------------------------------------- real engines


def test_registered_engines_conform():
    assert check_contracts() == []


def test_registry_covers_every_benchmark_store():
    assert set(store_classes()) == set(STORE_NAMES)


def test_public_api_matches_batch_oracles():
    for multi, oracle in BATCH_EQUIVALENCE.items():
        assert multi in PUBLIC_API
        assert oracle in PUBLIC_API
    assert set(ENGINE_HOOKS) == {"_put", "_get", "_scan", "_batch_lookup"}


def test_conforming_subclass_passes():
    assert check_store_class(_ConformingStore) == []


# ----------------------------------------------------------------- drift


def test_drifted_store_is_flagged():
    findings = check_store_class(DriftedStore)
    messages = _messages(findings)
    assert any(
        "API001" in m and "put()" in m and "'k'" in m for m in messages
    ), messages
    assert any(
        "API001" in m and "get()" in m and "flavor" in m for m in messages
    ), messages
    assert any(
        "API002" in m and "multi_upsert()" in m for m in messages
    ), messages
    assert all(f.severity == "error" for f in findings)


def test_abstract_methods_flagged():
    class Incomplete(KVStore):
        name = "incomplete"

        def _put(self, key, seq, value, value_bytes):
            return 0.0

    findings = check_store_class(Incomplete)
    assert any(
        f.rule == "API001" and "abstract" in f.message for f in findings
    )


def test_missing_name_attribute_flagged():
    class Nameless(_ConformingStore):
        name = "abstract"  # never overridden from the base placeholder

    findings = check_store_class(Nameless)
    assert any(
        f.rule == "API001" and "`name`" in f.message for f in findings
    )


def test_lost_default_flagged():
    class NoDefaults(_ConformingStore):
        name = "nodefaults"

        def items(self, start_key, end_key, page_size):
            return iter(())

    findings = check_store_class(NoDefaults)
    assert any(
        f.rule == "API001" and "lost its default" in f.message
        for f in findings
    )


def test_var_args_override_is_compatible():
    class Forwarding(_ConformingStore):
        name = "forwarding"

        def put(self, *args, **kwargs):
            return 0.0

    assert check_store_class(Forwarding) == []


def test_unknown_oracle_method_flagged(monkeypatch):
    monkeypatch.setitem(BATCH_EQUIVALENCE, "multi_put", "put_one")
    findings = check_store_class(_ConformingStore)
    assert any(
        f.rule == "API002" and "put_one" in f.message for f in findings
    )


def test_non_kvstore_class_rejected():
    class NotAStore:
        name = "imposter"

    findings = check_store_class(NotAStore)
    assert [f.rule for f in findings] == ["API001"]
    assert "not a KVStore" in findings[0].message


# ---------------------------------------------------------------- schema


def test_schema_fingerprint_matches_pin():
    assert schema_fingerprint() == PINNED_EVENT_SCHEMA
    assert check_event_schema() == []


def test_schema_drift_changes_the_fingerprint():
    widened = schema_fingerprint(
        stall_causes=tuple(STALL_CAUSES) + ("brand-new-cause",)
    )
    renamed = schema_fingerprint(
        slots=tuple(s + "_" for s in TraceEvent.__slots__)
    )
    dropped = schema_fingerprint(drop_causes=("queue_full",))
    assert len({widened, renamed, dropped, PINNED_EVENT_SCHEMA}) == 4
