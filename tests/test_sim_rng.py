"""Unit and property tests for the deterministic RNG."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import XorShiftRng


def test_same_seed_same_stream():
    a = XorShiftRng(42)
    b = XorShiftRng(42)
    assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]


def test_different_seeds_differ():
    a = XorShiftRng(1)
    b = XorShiftRng(2)
    assert [a.next_u64() for _ in range(5)] != [b.next_u64() for _ in range(5)]


def test_zero_seed_is_remapped():
    rng = XorShiftRng(0)
    assert rng.next_u64() != 0


def test_float_in_unit_interval():
    rng = XorShiftRng(7)
    for _ in range(1000):
        x = rng.next_float()
        assert 0.0 <= x < 1.0


def test_next_below_in_range():
    rng = XorShiftRng(9)
    for _ in range(1000):
        assert 0 <= rng.next_below(17) < 17


def test_next_below_rejects_nonpositive():
    with pytest.raises(ValueError):
        XorShiftRng(1).next_below(0)


def test_shuffle_is_permutation():
    rng = XorShiftRng(3)
    items = list(range(100))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
    assert shuffled != items  # astronomically unlikely to be identity


def test_fork_produces_independent_stream():
    rng = XorShiftRng(5)
    child = rng.fork()
    parent_vals = [rng.next_u64() for _ in range(5)]
    child_vals = [child.next_u64() for _ in range(5)]
    assert parent_vals != child_vals


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_u64_stays_in_64_bits(seed):
    rng = XorShiftRng(seed)
    for _ in range(20):
        assert 0 <= rng.next_u64() < 2**64


@given(st.integers(min_value=1, max_value=2**32), st.integers(min_value=1, max_value=1000))
def test_next_below_bound_property(seed, bound):
    rng = XorShiftRng(seed)
    assert 0 <= rng.next_below(bound) < bound


def test_uniformity_rough():
    rng = XorShiftRng(11)
    buckets = [0] * 10
    n = 20000
    for _ in range(n):
        buckets[rng.next_below(10)] += 1
    for count in buckets:
        assert abs(count - n / 10) < n / 10 * 0.2
