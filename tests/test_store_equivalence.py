"""Every store must behave like a dict under arbitrary operation streams.

This is the cross-engine contract: MioDB and every baseline, fed the same
puts/deletes/gets/scans, agree with a reference dictionary model at every
point -- including while background flushes and compactions are mid-
flight in simulated time.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    LevelDBStore,
    MatrixKVOptions,
    MatrixKVStore,
    NoveLSMNoSSTStore,
    NoveLSMOptions,
    NoveLSMStore,
)
from repro.core import MioDB, MioOptions
from repro.kvstore.options import StoreOptions
from repro.kvstore.values import SizedValue
from repro.mem.system import HybridMemorySystem

KB = 1 << 10
STORE_NAMES = [
    "miodb",
    "miodb-ssd",
    "leveldb",
    "novelsm",
    "novelsm-nosst",
    "matrixkv",
    "slmdb",
]


def build_store(name):
    if name == "miodb":
        system = HybridMemorySystem()
        return MioDB(system, MioOptions(memtable_bytes=2 * KB, num_levels=3))
    if name == "miodb-ssd":
        system = HybridMemorySystem.with_ssd()
        return MioDB(
            system,
            MioOptions(memtable_bytes=2 * KB, sstable_bytes=2 * KB,
                       num_levels=3, ssd_mode=True),
        )
    system = HybridMemorySystem()
    if name == "leveldb":
        return LevelDBStore(system, StoreOptions(memtable_bytes=2 * KB, sstable_bytes=2 * KB))
    if name == "novelsm":
        return NoveLSMStore(
            system,
            NoveLSMOptions(memtable_bytes=2 * KB, sstable_bytes=2 * KB,
                           nvm_memtable_bytes=8 * KB),
        )
    if name == "novelsm-nosst":
        return NoveLSMNoSSTStore(system, StoreOptions(memtable_bytes=2 * KB))
    if name == "matrixkv":
        return MatrixKVStore(
            system,
            MatrixKVOptions(memtable_bytes=2 * KB, sstable_bytes=2 * KB,
                            container_bytes=16 * KB, column_target_bytes=4 * KB),
        )
    if name == "slmdb":
        from repro.baselines import SLMDBOptions, SLMDBStore

        return SLMDBStore(
            system,
            SLMDBOptions(memtable_bytes=2 * KB, compaction_trigger_tables=3,
                         compaction_fanin=3),
        )
    raise ValueError(name)


operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 40), st.integers(0, 10**6)),
        st.tuples(st.just("delete"), st.integers(0, 40), st.just(0)),
        st.tuples(st.just("get"), st.integers(0, 40), st.just(0)),
        st.tuples(st.just("scan"), st.integers(0, 40), st.integers(1, 10)),
    ),
    min_size=1,
    max_size=120,
)


def apply_ops(store, ops):
    """Run ops against store and dict model, checking every read."""
    model = {}
    for op, idx, arg in ops:
        key = b"key%04d" % idx
        if op == "put":
            store.put(key, SizedValue(arg, 300))
            model[key] = arg
        elif op == "delete":
            store.delete(key)
            model.pop(key, None)
        elif op == "get":
            value, __ = store.get(key)
            expected = model.get(key)
            if expected is None:
                assert value is None, (key, value)
            else:
                assert value is not None and value.tag == expected, key
        else:  # scan
            pairs, __ = store.scan(key, arg)
            expected_keys = sorted(k for k in model if k >= key)[:arg]
            assert [k for k, __v in pairs] == expected_keys
            for k, v in pairs:
                assert v.tag == model[k]
    # final full verification after background work settles
    store.quiesce()
    for key, tag in model.items():
        value, __ = store.get(key)
        assert value is not None and value.tag == tag, key
    return model


@pytest.mark.parametrize("name", STORE_NAMES)
@settings(max_examples=25, deadline=None)
@given(ops=operations)
def test_store_matches_dict_model(name, ops):
    store = build_store(name)
    apply_ops(store, ops)


@pytest.mark.parametrize("name", STORE_NAMES)
def test_heavy_overwrite_stream(name):
    store = build_store(name)
    model = {}
    for i in range(2000):
        key = b"key%04d" % (i % 37)
        store.put(key, SizedValue(i, 300))
        model[key] = i
    store.quiesce()
    for key, tag in model.items():
        value, __ = store.get(key)
        assert value is not None and value.tag == tag


@pytest.mark.parametrize("name", STORE_NAMES)
def test_interleaved_deletes_and_rewrites(name):
    store = build_store(name)
    for i in range(300):
        store.put(b"key%04d" % (i % 20), SizedValue(("v", i), 300))
    for i in range(0, 20, 2):
        store.delete(b"key%04d" % i)
    for i in range(0, 20, 4):
        store.put(b"key%04d" % i, SizedValue("rewritten", 300))
    store.quiesce()
    for i in range(20):
        value, __ = store.get(b"key%04d" % i)
        if i % 4 == 0:
            assert value.tag == "rewritten"
        elif i % 2 == 0:
            assert value is None
        else:
            assert value is not None


# ------------------------------------------------- cluster-vs-flat oracle


def build_cluster_router(n_shards=4):
    from repro.bench.config import BenchScale
    from repro.cluster import Cluster, ShardRouter

    scale = BenchScale(
        memtable_bytes=8 * KB, dataset_bytes=1 << 20, value_size=300
    )
    cluster = Cluster("miodb", n_shards=n_shards, scale=scale)
    return ShardRouter(cluster)


def apply_ops_pairwise(router, flat, ops):
    """The same op stream through a sharded router and a flat store must
    produce identical get and scan results at every step."""
    for op, idx, arg in ops:
        key = b"key%04d" % idx
        if op == "put":
            router.put(key, SizedValue(arg, 300))
            flat.put(key, SizedValue(arg, 300))
        elif op == "delete":
            router.delete(key)
            flat.delete(key)
        elif op == "get":
            routed, __ = router.get(key)
            direct, __ = flat.get(key)
            if direct is None:
                assert routed is None, key
            else:
                assert routed is not None and routed.tag == direct.tag, key
        else:  # scan
            routed_pairs, __ = router.scan(key, arg)
            direct_pairs, __ = flat.scan(key, arg)
            assert [k for k, __v in routed_pairs] == [
                k for k, __v in direct_pairs
            ]
            for (rk, rv), (__dk, dv) in zip(routed_pairs, direct_pairs):
                assert rv.tag == dv.tag, rk
    router.quiesce()
    flat.quiesce()
    routed_all = list(router.items())
    direct_all, __ = flat.scan(b"\x00", 10**6)
    assert [k for k, __v in routed_all] == [k for k, __v in direct_all]
    for (rk, rv), (__dk, dv) in zip(routed_all, direct_all):
        assert rv.tag == dv.tag, rk


@pytest.mark.cluster_smoke
@settings(max_examples=15, deadline=None)
@given(ops=operations)
def test_cluster_router_matches_flat_store(ops):
    apply_ops_pairwise(build_cluster_router(), build_store("miodb"), ops)


@pytest.mark.cluster_smoke
def test_cluster_router_matches_flat_store_heavy_stream():
    router = build_cluster_router()
    flat = build_store("miodb")
    ops = []
    for i in range(1500):
        ops.append(("put", i % 37, i))
        if i % 5 == 0:
            ops.append(("get", (i * 7) % 37, 0))
        if i % 11 == 0:
            ops.append(("delete", (i * 3) % 37, 0))
        if i % 13 == 0:
            ops.append(("scan", i % 37, 8))
    apply_ops_pairwise(router, flat, ops)
