"""Determinism lint: per-rule fixtures, pragmas, and the baseline flow.

Every rule gets a positive fixture (the escape is flagged, with the
right ID and severity) and a negative one (the idiomatic repo pattern
passes).  The last test asserts the live tree lints clean -- the
property the CI ``check`` job gates on.
"""

import pytest

from repro.check.baseline import apply_baseline, load_baseline, save_baseline
from repro.check.lint import RULES, lint_text, run_lint
from repro.check.report import SEV_ERROR, SEV_WARNING


def _rules(findings):
    return [f.rule for f in findings]


def test_rule_registry_is_consistent():
    assert set(RULES) == {
        "DET001", "DET002", "DET003", "ORD001", "VOC001", "STAT001"
    }
    for rule_id, rule in RULES.items():
        assert rule.id == rule_id
        assert rule.severity in (SEV_ERROR, SEV_WARNING)
        assert rule.summary


# ------------------------------------------------------------------ DET001


def test_det001_flags_wall_clock_call():
    findings = lint_text("import time\nt = time.perf_counter()\n")
    assert _rules(findings) == ["DET001"]
    assert findings[0].severity == SEV_ERROR
    assert findings[0].line == 2


def test_det001_flags_datetime_now():
    src = "import datetime\nstamp = datetime.datetime.now()\n"
    assert _rules(lint_text(src)) == ["DET001"]


def test_det001_flags_from_import_alias():
    src = "from time import perf_counter as tick\nt = tick()\n"
    assert _rules(lint_text(src)) == ["DET001"]


def test_det001_passes_simulated_clock():
    src = "def f(system):\n    return system.clock.now\n"
    assert lint_text(src) == []


# ------------------------------------------------------------------ DET002


def test_det002_flags_time_sleep():
    findings = lint_text("import time\ntime.sleep(0.5)\n")
    assert _rules(findings) == ["DET002"]


def test_det002_passes_executor_wait():
    src = "def f(system, job):\n    return system.executor.wait_for(job)\n"
    assert lint_text(src) == []


# ------------------------------------------------------------------ DET003


def test_det003_flags_random_import():
    assert _rules(lint_text("import random\n")) == ["DET003"]
    assert _rules(lint_text("from random import shuffle\n")) == ["DET003"]


def test_det003_flags_entropy_calls():
    assert _rules(lint_text("import os\nos.urandom(8)\n")) == ["DET003"]
    assert _rules(lint_text("import uuid\nuuid.uuid4()\n")) == ["DET003"]
    assert _rules(lint_text("import secrets\n")) == ["DET003"]


def test_det003_exempts_the_rng_seam():
    src = "import random\n"
    assert lint_text(src, "src/repro/sim/rng.py") == []
    assert _rules(lint_text(src, "src/repro/workloads/keys.py")) == ["DET003"]


def test_det003_passes_xorshift():
    src = "from repro.sim.rng import XorShiftRng\nrng = XorShiftRng(1)\n"
    assert lint_text(src) == []


# ------------------------------------------------------------------ ORD001


def test_ord001_flags_set_iteration():
    findings = lint_text("for x in {1, 2, 3}:\n    pass\n")
    assert _rules(findings) == ["ORD001"]
    assert findings[0].severity == SEV_WARNING


def test_ord001_flags_set_through_wrappers_and_comprehensions():
    assert _rules(lint_text("xs = list({1, 2})\n")) == ["ORD001"]
    assert _rules(lint_text("s = ','.join({'a', 'b'})\n")) == ["ORD001"]
    assert _rules(lint_text("ys = [x for x in {1, 2}]\n")) == ["ORD001"]


def test_ord001_passes_sorted_sets_and_dicts():
    assert lint_text("for x in sorted({1, 2}):\n    pass\n") == []
    assert lint_text("for k in {'a': 1}:\n    pass\n") == []


# ------------------------------------------------------------------ VOC001


def test_voc001_flags_unknown_stall_cause():
    src = "def f(self, s):\n    return self._stall_wait('made-up', s)\n"
    findings = lint_text(src)
    assert _rules(findings) == ["VOC001"]
    assert "made-up" in findings[0].message


def test_voc001_flags_unknown_cause_in_dict_literal():
    src = "args = {'cause': 'novel-reason'}\n"
    assert _rules(lint_text(src)) == ["VOC001"]


def test_voc001_passes_closed_vocabulary():
    src = (
        "def f(self, s):\n"
        "    self._stall_wait('memtable-full', s)\n"
        "    self._stall_delay('l0-slowdown', s)\n"
        "    return {'cause': 'queue_full'}\n"
    )
    assert lint_text(src) == []


def test_voc001_flags_unknown_trace_category():
    src = "def f(obs, t):\n    obs.instant('x', 'ev', 'repl.novel', t)\n"
    findings = lint_text(src)
    assert _rules(findings) == ["VOC001"]
    assert "repl.novel" in findings[0].message


def test_voc001_passes_registered_trace_categories():
    src = (
        "def f(obs, t):\n"
        "    obs.instant('repl:g0', 'append', 'repl.ship', t)\n"
        "    obs.span('repl:g0', 'ack', 'repl.ack', t, t)\n"
        "    obs.span('repl:g0:r1', 'apply', 'repl.apply', t, t)\n"
        "    obs.instant('repl:g0', 'kill', 'repl.election', t)\n"
        "    obs.span('foreground', 'put', 'op', t, t)\n"
    )
    assert lint_text(src) == []


def test_voc001_ignores_dynamic_trace_categories():
    # Non-literal categories (the CAT_* constants) are checked at
    # runtime by the strict recorder, not statically.
    src = "def f(obs, cat, t):\n    obs.span('x', 'ev', cat, t, t)\n"
    assert lint_text(src) == []


# ----------------------------------------------------------------- STAT001


def test_stat001_flags_unregistered_family():
    src = "def f(system):\n    system.stats.add('novel.bytes', 1)\n"
    findings = lint_text(src)
    assert _rules(findings) == ["STAT001"]
    assert "novel" in findings[0].message


def test_stat001_flags_missing_family_prefix():
    src = "def f(system):\n    system.stats.add('bytes', 1)\n"
    assert _rules(lint_text(src)) == ["STAT001"]


def test_stat001_checks_fstring_head():
    bad = "def f(system, n):\n    system.stats.add(f'novel.L{n}', 1)\n"
    good = "def f(system, n):\n    system.stats.add(f'compact.L{n}', 1)\n"
    assert _rules(lint_text(bad)) == ["STAT001"]
    assert lint_text(good) == []


def test_stat001_passes_registered_family_and_dynamic_keys():
    src = (
        "def f(system, key):\n"
        "    system.stats.add('flush.bytes', 1)\n"
        "    system.stats.add(key, 1)\n"  # fully dynamic: not checkable
    )
    assert lint_text(src) == []


# ----------------------------------------------------------------- pragmas


def test_pragma_suppresses_on_the_flagged_line():
    src = "import time\nt = time.time()  # repro: allow[DET001] -- test\n"
    assert lint_text(src) == []


def test_pragma_on_the_line_above():
    src = (
        "import time\n"
        "# repro: allow[DET001] -- test\n"
        "t = time.time()\n"
    )
    assert lint_text(src) == []


def test_pragma_for_the_wrong_rule_does_not_suppress():
    src = "import time\nt = time.time()  # repro: allow[DET002] -- wrong\n"
    assert _rules(lint_text(src)) == ["DET001"]


def test_file_pragma_suppresses_everywhere():
    src = (
        "# repro: allow-file[DET001] -- timing module\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.monotonic()\n"
    )
    assert lint_text(src) == []


def test_pragmas_can_be_ignored():
    src = "import time\nt = time.time()  # repro: allow[DET001] -- test\n"
    findings = lint_text(src, respect_pragmas=False)
    assert _rules(findings) == ["DET001"]


# ---------------------------------------------------------------- baseline


def test_baseline_round_trip(tmp_path):
    findings = lint_text("import time\nt = time.time()\n", "src/x.py")
    assert findings
    path = save_baseline(findings, tmp_path / "baseline")
    loaded = load_baseline(path)
    assert loaded == {f.fingerprint for f in findings}
    fresh, suppressed = apply_baseline(findings, loaded)
    assert fresh == []
    assert suppressed == len(findings)


def test_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent") == set()


def test_fingerprint_ignores_indentation():
    a = lint_text("import time\nt = time.time()\n", "src/x.py")[0]
    b = lint_text("import time\nif True:\n    t = time.time()\n", "src/x.py")[0]
    assert a.fingerprint == b.fingerprint


def test_new_finding_survives_stale_baseline(tmp_path):
    old = lint_text("import time\nt = time.time()\n", "src/x.py")
    path = save_baseline(old, tmp_path / "baseline")
    new = lint_text("import time\nt = time.monotonic()\n", "src/x.py")
    fresh, suppressed = apply_baseline(new, load_baseline(path))
    assert _rules(fresh) == ["DET001"]
    assert suppressed == 0


# ---------------------------------------------------------------- the tree


def test_repo_lints_clean():
    """The live src/repro tree has no unsuppressed findings."""
    assert run_lint() == []
