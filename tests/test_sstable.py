"""Unit tests for SSTables: building, reading, merging."""

import pytest

from repro.mem.costs import CpuCostModel
from repro.mem.device import Device
from repro.mem.profiles import OPTANE_NVM_PROFILE
from repro.skiplist.node import TOMBSTONE
from repro.sstable.merge import merge_entry_streams, merge_tables
from repro.sstable.table import SSTable, build_sstable, entry_frame_bytes


@pytest.fixture
def nvm():
    return Device(OPTANE_NVM_PROFILE)


@pytest.fixture
def cpu():
    return CpuCostModel()


def entries_for(keys, start_seq=1, vbytes=100):
    return [(k, start_seq + i, b"v-" + k, vbytes) for i, k in enumerate(keys)]


def test_build_charges_serialize_and_write(nvm, cpu):
    entries = entries_for([b"a", b"b", b"c"])
    table, seconds = build_sstable(entries, nvm, cpu)
    assert seconds > 0
    assert nvm.bytes_written == table.data_bytes
    assert nvm.bytes_in_use == table.data_bytes


def test_empty_table_rejected(nvm):
    with pytest.raises(ValueError):
        SSTable([], nvm)


def test_unsorted_entries_rejected(nvm):
    with pytest.raises(ValueError):
        SSTable([(b"b", 1, b"v", 10), (b"a", 2, b"v", 10)], nvm)


def test_same_key_must_be_seq_descending(nvm):
    SSTable([(b"a", 5, b"v", 10), (b"a", 2, b"v", 10)], nvm)
    with pytest.raises(ValueError):
        SSTable([(b"a", 2, b"v", 10), (b"a", 5, b"v", 10)], nvm)


def test_get_hit_and_miss(nvm, cpu):
    table = SSTable(entries_for([b"a", b"c"]), nvm)
    entry, cost = table.get(b"a", cpu)
    assert entry[0] == b"a"
    assert cost > 0
    entry, cost = table.get(b"b", cpu)
    assert entry is None
    assert cost > 0  # a miss still reads a block


def test_get_returns_newest_version(nvm, cpu):
    table = SSTable([(b"a", 9, b"new", 10), (b"a", 1, b"old", 10)], nvm)
    entry, __ = table.get(b"a", cpu)
    assert entry[1] == 9


def test_min_max_and_overlap(nvm):
    table = SSTable(entries_for([b"c", b"f"]), nvm)
    assert table.min_key == b"c"
    assert table.max_key == b"f"
    assert table.overlaps(b"a", b"c")
    assert table.overlaps(b"d", b"e")
    assert not table.overlaps(b"g", b"z")
    assert not table.overlaps(b"a", b"b")


def test_release_frees_space_once(nvm):
    table = SSTable(entries_for([b"a"]), nvm)
    size = table.data_bytes
    assert table.release() == size
    assert table.release() == 0
    assert nvm.bytes_in_use == 0


def test_read_after_release_rejected(nvm, cpu):
    table = SSTable(entries_for([b"a"]), nvm)
    table.release()
    with pytest.raises(ValueError):
        table.get(b"a", cpu)
    with pytest.raises(ValueError):
        table.scan_all(cpu)


def test_scan_all_charges_sequential_read(nvm, cpu):
    table = SSTable(entries_for([b"a", b"b"]), nvm)
    nvm.reset_counters()
    entries, seconds = table.scan_all(cpu)
    assert len(entries) == 2
    assert nvm.bytes_read == table.data_bytes
    assert seconds > 0


def test_entry_frame_bytes():
    assert entry_frame_bytes((b"abc", 1, b"v", 100)) == 3 + 100 + 24


# ------------------------------------------------------------------ merging


def test_merge_streams_dedups_by_newest():
    a = [(b"k", 5, b"new", 10)]
    b = [(b"k", 1, b"old", 10)]
    merged = list(merge_entry_streams([a, b]))
    assert merged == [(b"k", 5, b"new", 10)]


def test_merge_streams_keeps_all_versions_when_asked():
    a = [(b"k", 5, b"new", 10)]
    b = [(b"k", 1, b"old", 10)]
    merged = list(merge_entry_streams([a, b], drop_shadowed=False))
    assert [e[1] for e in merged] == [5, 1]


def test_merge_streams_drop_tombstones():
    a = [(b"k", 5, TOMBSTONE, 0)]
    b = [(b"k", 1, b"old", 10), (b"x", 2, b"keep", 10)]
    merged = list(
        merge_entry_streams([a, b], drop_tombstones=True, tombstone=TOMBSTONE)
    )
    assert merged == [(b"x", 2, b"keep", 10)]


def test_merge_streams_global_order():
    a = entries_for([b"a", b"c", b"e"], start_seq=1)
    b = entries_for([b"b", b"d"], start_seq=10)
    merged = list(merge_entry_streams([a, b]))
    assert [e[0] for e in merged] == [b"a", b"b", b"c", b"d", b"e"]


def test_merge_tables(nvm):
    t1 = SSTable(entries_for([b"a", b"c"], start_seq=1), nvm)
    t2 = SSTable(entries_for([b"b", b"c"], start_seq=10), nvm)
    merged = merge_tables([t1, t2])
    keys = [e[0] for e in merged]
    assert keys == [b"a", b"b", b"c"]
    c_entry = merged[2]
    assert c_entry[1] >= 10  # t2's newer version of c wins
