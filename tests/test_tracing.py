"""Tests for the job tracer."""

from repro.core import MioDB, MioOptions
from repro.kvstore.values import SizedValue
from repro.mem.system import HybridMemorySystem
from repro.sim.tracing import JobTracer

KB = 1 << 10


def test_tracer_records_spans(system):
    tracer = JobTracer(system.executor)
    worker = system.executor.worker("w")
    system.executor.submit(worker, 1.0, name="job-a")
    system.executor.submit(worker, 2.0, name="job-b")
    assert len(tracer.spans) == 2
    assert tracer.spans[0] == ("w", "job-a", 0.0, 1.0)
    assert tracer.busy_time() == 3.0
    assert tracer.busy_time("w") == 3.0
    assert tracer.busy_time("other") == 0.0


def test_tracer_detach(system):
    tracer = JobTracer(system.executor)
    tracer.detach()
    system.executor.submit(system.executor.worker("w"), 1.0)
    assert tracer.spans == []


def test_max_concurrency(system):
    tracer = JobTracer(system.executor)
    for i in range(3):
        system.executor.submit(system.executor.worker(f"w{i}"), 1.0)
    system.executor.submit(system.executor.worker("w0"), 1.0)  # serialized
    assert tracer.max_concurrency() == 3


def test_empty_gantt(system):
    assert "no jobs" in JobTracer(system.executor).gantt()


def test_gantt_renders_rows(system):
    tracer = JobTracer(system.executor)
    system.executor.submit(system.executor.worker("alpha"), 1.0)
    system.executor.submit(system.executor.worker("beta"), 1.0)
    chart = tracer.gantt(width=20)
    assert "alpha" in chart and "beta" in chart
    assert "#" in chart


def test_concurrency_profile(system):
    tracer = JobTracer(system.executor)
    system.executor.submit(system.executor.worker("a"), 2.0)
    system.executor.submit(system.executor.worker("b"), 2.0)
    profile = tracer.concurrency_profile(samples=10)
    assert profile
    assert max(running for __, running in profile) == 2


def test_submit_listeners_receive_meta(system):
    seen = []
    listener = lambda job, meta: seen.append((job.name, meta))  # noqa: E731
    system.executor.add_submit_listener(listener)
    worker = system.executor.worker("w")
    system.executor.submit(worker, 1.0, name="a", meta={"cat": "flush", "bytes": 7})
    system.executor.submit(worker, 1.0, name="b")
    system.executor.remove_submit_listener(listener)
    system.executor.submit(worker, 1.0, name="c")
    assert seen == [("a", {"cat": "flush", "bytes": 7}), ("b", None)]


def test_job_tracer_and_recorder_coexist(system):
    from repro.obs import TraceRecorder

    tracer = JobTracer(system.executor)
    recorder = TraceRecorder(system.clock).attach(system)
    system.executor.submit(system.executor.worker("w"), 1.0, name="job")
    assert len(tracer.spans) == 1
    assert len(list(recorder.worker_spans())) == 1
    recorder.detach()
    tracer.detach()


def test_concurrency_profile_matches_brute_force(system):
    tracer = JobTracer(system.executor)
    for i in range(4):
        system.executor.submit(system.executor.worker(f"w{i}"), float(i + 1))
    system.executor.submit(system.executor.worker("w0"), 2.0)
    profile = tracer.concurrency_profile(samples=50)
    for t, running in profile:
        expected = sum(1 for __, __n, s, e in tracer.spans if s <= t < e)
        assert running == expected


def test_miodb_parallel_compaction_visible_in_trace():
    system = HybridMemorySystem()
    tracer = JobTracer(system.executor)
    store = MioDB(system, MioOptions(memtable_bytes=8 * KB, num_levels=5))
    for i in range(2000):
        store.put(b"key%06d" % ((i * 7919) % 2000), SizedValue(i, 512))
    store.quiesce()
    # parallel per-level compaction: more than two background jobs overlap
    assert tracer.max_concurrency() >= 3
    workers = {w for w, __n, __s, __e in tracer.spans}
    assert any("compact-L" in w for w in workers)
    assert "miodb-flush" in workers
