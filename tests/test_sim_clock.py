"""Unit tests for the simulated clock."""

import pytest

from repro.sim.clock import SimClock


def test_starts_at_zero_by_default():
    assert SimClock().now == 0.0


def test_starts_at_given_time():
    assert SimClock(5.0).now == 5.0


def test_advance_moves_forward():
    clock = SimClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now == 2.0


def test_advance_returns_new_time():
    clock = SimClock(1.0)
    assert clock.advance(2.0) == 3.0


def test_advance_by_zero_is_allowed():
    clock = SimClock(1.0)
    assert clock.advance(0.0) == 1.0


def test_advance_rejects_negative():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_advance_to_future():
    clock = SimClock()
    clock.advance_to(10.0)
    assert clock.now == 10.0


def test_advance_to_past_is_noop():
    clock = SimClock(10.0)
    clock.advance_to(5.0)
    assert clock.now == 10.0


def test_advance_to_same_instant_is_noop():
    clock = SimClock(3.0)
    assert clock.advance_to(3.0) == 3.0


def test_repr_contains_time():
    assert "1.5" in repr(SimClock(1.5))
