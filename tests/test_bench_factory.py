"""Unit tests for the benchmark harness helpers."""

import pytest

from repro.bench import STORE_NAMES, default_scale, format_table, make_store, make_system
from repro.bench.config import BenchScale


def test_make_system_variants():
    assert make_system().ssd is None
    assert make_system(ssd=True).ssd is not None


@pytest.mark.parametrize("name", STORE_NAMES)
def test_make_store_all_names(name):
    store, system = make_store(name)
    assert store.name == name
    assert store.system is system


def test_make_store_unknown_name():
    with pytest.raises(ValueError):
        make_store("rocksdb")


def test_make_store_rejects_system_as_positional_scale():
    system = make_system()
    with pytest.raises(TypeError, match="system="):
        make_store("miodb", system)


def test_make_store_rejects_wrong_scale_type():
    with pytest.raises(TypeError, match="BenchScale"):
        make_store("miodb", scale=1024)


def test_make_store_rejects_wrong_system_type():
    with pytest.raises(TypeError, match="HybridMemorySystem"):
        make_store("miodb", BenchScale(), system="nope")


def test_make_store_rejects_non_string_name():
    with pytest.raises(TypeError, match="store name"):
        make_store(BenchScale())


def test_make_store_applies_overrides():
    store, __ = make_store("miodb", num_levels=5)
    assert store.options.num_levels == 5
    assert len(store.levels) == 5


def test_make_store_rejects_unknown_override():
    with pytest.raises(AttributeError):
        make_store("miodb", not_an_option=1)


def test_make_store_ssd_modes():
    store, system = make_store("miodb", ssd=True)
    assert store.options.ssd_mode
    assert system.ssd is not None
    store, system = make_store("matrixkv", ssd=True)
    assert store.device is system.ssd


def test_scale_records_math():
    scale = BenchScale(dataset_bytes=32 << 20, value_size=4096)
    assert scale.n_records == 8192
    assert scale.records_for(1024) == 32768


def test_default_scale_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    assert default_scale().dataset_bytes == 32 << 20
    monkeypatch.setenv("REPRO_BENCH_SCALE", "large")
    assert default_scale().dataset_bytes == 128 << 20
    monkeypatch.setenv("REPRO_BENCH_SCALE", "bogus")
    with pytest.raises(ValueError):
        default_scale()


def test_format_table_alignment():
    text = format_table(["name", "value"], [["miodb", 1.5], ["x", 100]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "-" in lines[1]
    assert "1.50" in lines[2]


def test_format_table_small_floats_scientific():
    text = format_table(["v"], [[0.000015]])
    assert "e" in text.splitlines()[-1]
