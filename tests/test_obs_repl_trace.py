"""Causal replication tracing: parent links, attribution, invariance.

The ``repl.*`` events form one causal chain per replicated write --
append (group track) -> ship (per-follower, parent=append) -> durable /
apply (parent=ship) -> ack (parent = the straggler's delivering ship
span) -- and a failover chain kill -> election-blocked / truncate /
elect -> repoint.  These tests pin the chain's integrity, the exact
latency-conservation invariant for replicated ops, and the zero-overhead
contract: tracing must not move the simulated clock or any replicated
state by one bit.
"""

import pytest

from repro.bench.config import BenchScale
from repro.kvstore.values import SizedValue
from repro.obs.analyze import (
    attribute_ops,
    failover_timelines,
    follower_lag_timeline,
    replication_summary,
)
from repro.obs.events import (
    CAT_REPL_ACK,
    CAT_REPL_APPLY,
    CAT_REPL_ELECTION,
    CAT_REPL_SHIP,
)
from repro.replication import ReplicaGroup, ReplicationConfig
from repro.workloads.keys import key_for

pytestmark = pytest.mark.obs_smoke

KB = 1 << 10
SCALE = BenchScale(memtable_bytes=8 * KB, dataset_bytes=1 << 20, value_size=256)


def make_group(followers=2, **config_kwargs):
    config = ReplicationConfig(followers=followers, **config_kwargs)
    return ReplicaGroup.build("miodb", SCALE, config=config)


def traced_run(n_ops=30, followers=2, **config_kwargs):
    group = make_group(followers=followers, **config_kwargs)
    recorder = group.attach_tracing()
    for i in range(n_ops):
        group.put(key_for(i), SizedValue(i, 256))
    group.catch_up()
    return group, recorder


def by_span(events):
    return {e.args["span"]: e for e in events if e.args and "span" in e.args}


# ------------------------------------------------------------- causal chain


def test_repl_events_are_emitted_with_all_four_categories():
    __, recorder = traced_run()
    cats = {e.cat for e in recorder.events}
    assert CAT_REPL_SHIP in cats
    assert CAT_REPL_APPLY in cats
    assert CAT_REPL_ACK in cats


def test_ship_spans_parent_the_append_instants():
    __, recorder = traced_run()
    appends = by_span(
        e for e in recorder.events
        if e.cat == CAT_REPL_SHIP and e.name == "append"
    )
    ships = [e for e in recorder.events
             if e.cat == CAT_REPL_SHIP and e.name == "ship"]
    assert ships
    for ship in ships:
        parent = ship.args.get("parent")
        assert parent in appends
        # The ship batch ends at (or past) the LSN the append recorded.
        assert ship.args["lsn"] >= appends[parent].args["lsn"]


def test_durable_and_apply_parent_their_ship_span():
    __, recorder = traced_run()
    ships = by_span(
        e for e in recorder.events
        if e.cat == CAT_REPL_SHIP and e.name == "ship"
    )
    applies = [e for e in recorder.events if e.cat == CAT_REPL_APPLY]
    assert applies
    for event in applies:
        parent = event.args.get("parent")
        assert parent in ships
        # Same follower as the delivering ship.
        assert event.args["replica"] == ships[parent].args["replica"]
        assert event.track.endswith(f"r{event.args['replica']}")


def test_ack_parents_name_the_straggler_ship_span():
    __, recorder = traced_run()
    ships = by_span(
        e for e in recorder.events
        if e.cat == CAT_REPL_SHIP and e.name == "ship"
    )
    acks = [e for e in recorder.events if e.cat == CAT_REPL_ACK]
    assert acks
    for ack in acks:
        straggler = ack.args.get("straggler")
        assert straggler is not None
        parent = ack.args.get("parent")
        if parent is not None:
            assert ships[parent].args["replica"] == straggler


def test_span_ids_are_unique_and_parents_precede_children():
    __, recorder = traced_run()
    repl = [e for e in recorder.events if e.cat.startswith("repl.")]
    spans = [e.args["span"] for e in repl]
    assert len(spans) == len(set(spans))
    # Emission order respects causality: a parent span id is always
    # emitted before any event that references it.
    seen = set()
    for event in repl:
        parent = event.args.get("parent")
        if parent is not None:
            assert parent in seen
        seen.add(event.args["span"])


# -------------------------------------------------------------- attribution


def test_replicated_put_attribution_conserves_exactly():
    group, recorder = traced_run(n_ops=25)
    attributions = attribute_ops(recorder)
    assert len(attributions) == 25
    replicated = [a for a in attributions if a.repl_s]
    assert replicated, "quorum acks must show up in the decomposition"
    for attr in attributions:
        assert attr.residual_s() == 0.0
        for key in attr.repl_s:
            assert key.startswith("ack:g0")


def test_ack_attribution_totals_equal_the_ack_wait_stat():
    group, recorder = traced_run(n_ops=25)
    attributions = attribute_ops(recorder)
    total = 0.0
    for attr in attributions:
        for key in sorted(attr.repl_s):
            total += attr.repl_s[key]
    assert total == pytest.approx(
        group.stats.get("repl.ack_wait_s"), abs=0.0
    )


def test_leader_only_acks_add_no_repl_component():
    __, recorder = traced_run(n_ops=10, ack_policy="leader")
    for attr in attribute_ops(recorder):
        assert attr.repl_s == {}


# --------------------------------------------------------------- invariance


def test_tracing_does_not_move_the_simulated_clock_or_state():
    def run(traced):
        group = make_group()
        if traced:
            group.attach_tracing()
        for i in range(40):
            group.put(key_for(i), SizedValue(i, 256))
        group.crash_replica(group.leader_idx)
        for i in range(40, 60):
            group.put(key_for(i), SizedValue(i, 256))
        group.catch_up()
        return group.clock.now, group.snapshot()

    assert run(traced=False) == run(traced=True)


def test_traced_runs_are_deterministic():
    def events():
        __, recorder = traced_run(n_ops=20)
        return [
            (e.track, e.name, e.cat, e.ts, e.dur, e.args)
            for e in recorder.events
        ]

    assert events() == events()


# ----------------------------------------------------- failover + timelines


def test_failover_timeline_links_kill_to_repoint():
    group = make_group()
    recorder = group.attach_tracing()
    for i in range(20):
        group.put(key_for(i), SizedValue(i, 256))
    old_leader = group.leader_idx
    group.crash_replica(old_leader)
    for i in range(20, 30):
        group.put(key_for(i), SizedValue(i, 256))
    timelines = failover_timelines(recorder)
    assert len(timelines) == 1
    tl = timelines[0]
    assert tl["replica"] == old_leader
    assert tl["role"] == "leader"
    assert tl["winner"] is not None and tl["winner"] != old_leader
    assert tl["epoch"] == 1
    # The election runs exactly one election timeout on the simulated clock.
    assert tl["elect_end_s"] - tl["elect_start_s"] == pytest.approx(
        group.config.election_timeout_s
    )
    assert tl["repoint_t_s"] >= tl["elect_end_s"]
    assert tl["duration_s"] == tl["repoint_t_s"] - tl["kill_t_s"]


def test_follower_kill_produces_no_leader_timeline():
    group = make_group()
    recorder = group.attach_tracing()
    for i in range(10):
        group.put(key_for(i), SizedValue(i, 256))
    victim = group.alive_followers()[0].replica_id
    group.crash_replica(victim)
    for i in range(10, 15):
        group.put(key_for(i), SizedValue(i, 256))
    assert failover_timelines(recorder) == []
    kills = [e for e in recorder.events
             if e.cat == CAT_REPL_ELECTION and e.name == "kill"]
    assert len(kills) == 1 and kills[0].args["replica"] == victim


def test_lag_timeline_covers_every_follower():
    __, recorder = traced_run(n_ops=20)
    lag = follower_lag_timeline(recorder)
    assert sorted(lag) == ["g0:r1", "g0:r2"]
    for series in lag.values():
        assert series
        for point in series:
            assert point["lag"] >= 0
            assert point["t_s"] >= 0.0
        assert [p["t_s"] for p in series] == sorted(p["t_s"] for p in series)


def test_replication_summary_shape_and_conservation():
    __, recorder = traced_run(n_ops=20)
    summary = replication_summary(recorder)
    assert summary is not None
    assert set(summary["phases"]) == {"ship_s", "apply_s", "ack_s", "election_s"}
    assert summary["appends"] > 0
    assert summary["acks"] == 20
    assert sorted(summary["followers"]) == ["g0:r1", "g0:r2"]
    total_straggles = sum(summary["stragglers"].values())
    assert total_straggles == summary["acks"]
    assert summary["failovers"] == []


def test_unreplicated_trace_has_no_replication_summary():
    from repro.bench.factory import make_store

    store, __ = make_store("miodb", SCALE)
    recorder = store.system.attach_tracing()
    for i in range(10):
        store.put(key_for(i), SizedValue(i, 256))
    assert replication_summary(recorder) is None


# -------------------------------------------------------------- strict vocab


def test_strict_recorder_rejects_unknown_repl_event_names():
    from repro.obs.events import CAT_REPL_SHIP as SHIP
    from repro.obs.recorder import TraceRecorder
    from repro.sim.clock import SimClock

    clock = SimClock()
    recorder = TraceRecorder(clock, strict=True)
    recorder.instant("repl:g0", "append", SHIP, 0.0, {"span": 1, "lsn": 1})
    with pytest.raises(ValueError):
        recorder.instant("repl:g0", "enqueue", SHIP, 0.0, {"span": 2})
