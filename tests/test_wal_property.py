"""Property-based tests for WAL durability semantics."""

from hypothesis import given, settings, strategies as st

from repro.mem.device import Device
from repro.mem.profiles import OPTANE_NVM_PROFILE
from repro.persist.wal import WriteAheadLog

records = st.lists(
    st.tuples(st.binary(min_size=1, max_size=8), st.binary(max_size=16)),
    max_size=60,
)


def make_wal(pairs, start_seq=1):
    wal = WriteAheadLog(Device(OPTANE_NVM_PROFILE))
    seq = start_seq
    for key, value in pairs:
        wal.append(seq, key, value, len(value))
        seq += 1
    return wal, seq


@given(records)
def test_replay_returns_everything_in_order(pairs):
    wal, __ = make_wal(pairs)
    replayed = list(wal.replay())
    assert [r.key for r in replayed] == [k for k, __v in pairs]
    assert [r.seq for r in replayed] == list(range(1, len(pairs) + 1))


@given(records, st.integers(min_value=0, max_value=70))
def test_truncate_then_replay_is_a_suffix(pairs, cut):
    wal, __ = make_wal(pairs)
    wal.truncate_through(cut)
    replayed = [r.seq for r in wal.replay()]
    expected = [s for s in range(1, len(pairs) + 1) if s > cut]
    assert replayed == expected


@given(records, st.integers(min_value=0, max_value=10))
def test_torn_tail_drops_only_the_tail(pairs, torn):
    wal, __ = make_wal(pairs)
    wal.tear_tail(torn)
    replayed = [r.seq for r in wal.replay()]
    keep = max(0, len(pairs) - torn)
    assert replayed == list(range(1, keep + 1))


@given(records, records)
def test_batch_replay_is_all_or_nothing(singles, batch_pairs):
    wal, next_seq = make_wal(singles)
    items = [
        (next_seq + i, key, value, len(value))
        for i, (key, value) in enumerate(batch_pairs)
    ]
    wal.append_batch(items)
    # intact: the full batch replays after the singles
    replayed = [r.seq for r in wal.replay()]
    assert replayed == list(range(1, next_seq + len(items)))
    # torn commit: the whole batch vanishes, singles stay
    if items:
        wal.tear_tail(1)
        replayed = [r.seq for r in wal.replay()]
        assert replayed == list(range(1, next_seq))


@given(records)
def test_space_accounting_matches_device(pairs):
    device = Device(OPTANE_NVM_PROFILE)
    wal = WriteAheadLog(device)
    seq = 1
    for key, value in pairs:
        wal.append(seq, key, value, len(value))
        seq += 1
    assert device.bytes_in_use == wal.live_bytes
    wal.truncate_through(seq // 2)
    assert device.bytes_in_use == wal.live_bytes
