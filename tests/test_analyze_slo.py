"""Tests for SLO objectives, burn-rate alerting, and rolling series."""

import pytest

from repro.obs import run_traced
from repro.obs.analyze import (
    BurnRateRule,
    SloMonitor,
    SloObjective,
    attribute_ops,
    rolling_series,
)

pytestmark = pytest.mark.obs_smoke


def test_objective_and_rule_validation():
    with pytest.raises(ValueError):
        SloObjective("x", threshold_s=0.0)
    with pytest.raises(ValueError):
        SloObjective("x", threshold_s=1e-6, target=1.0)
    with pytest.raises(ValueError):
        SloObjective("x", threshold_s=1e-6, target=0.0)
    with pytest.raises(ValueError):
        BurnRateRule(short_s=2.0, long_s=1.0, factor=1.0)
    with pytest.raises(ValueError):
        BurnRateRule(short_s=0.0, long_s=1.0, factor=1.0)
    with pytest.raises(ValueError):
        BurnRateRule(short_s=1.0, long_s=1.0, factor=0.0)
    with pytest.raises(ValueError):
        SloMonitor(SloObjective("x", 1e-6), [])
    assert SloObjective("x", 1e-6, target=0.99).error_budget == pytest.approx(0.01)


def test_monitor_fires_and_resolves_on_a_synthetic_burst():
    # 100 good samples, a burst of 10 bad, then 100 good again; the
    # 10-sample short window must fire during the burst and resolve.
    objective = SloObjective("lat", threshold_s=1e-3, target=0.9)
    rule = BurnRateRule(short_s=0.010, long_s=0.050, factor=1.0)
    samples = []
    t = 0.0
    for i in range(210):
        t += 0.001
        bad = 100 <= i < 110
        samples.append((t, 2e-3 if bad else 1e-4))
    report = SloMonitor(objective, [rule]).run(samples)
    states = [a["state"] for a in report["alerts"]]
    assert states == ["fire", "resolve"]
    fire, resolve = report["alerts"]
    assert fire["t_s"] < resolve["t_s"]
    assert fire["burn_short"] >= 1.0 and fire["burn_long"] >= 1.0
    assert report["bad"] == 10
    assert report["compliance"] == pytest.approx(200 / 210)
    assert report["firing_at_end"] == []


def test_short_spike_does_not_fire_the_long_window():
    # One bad sample in a sea of good ones: the short window burns hot
    # but the long window stays under the factor, so nothing fires.
    objective = SloObjective("lat", threshold_s=1e-3, target=0.9)
    rule = BurnRateRule(short_s=0.002, long_s=0.200, factor=1.0)
    samples = [(0.001 * (i + 1), 1e-4) for i in range(200)]
    samples[50] = (samples[50][0], 5e-3)
    report = SloMonitor(objective, [rule]).run(samples)
    assert report["alerts"] == []
    assert report["bad"] == 1


def test_empty_sample_stream():
    objective = SloObjective("lat", threshold_s=1e-3)
    report = SloMonitor(objective, [BurnRateRule(1.0, 1.0, 1.0)]).run([])
    assert report["samples"] == 0
    assert report["compliance"] is None
    assert report["alerts"] == []


def test_alert_log_is_deterministic_on_a_traced_run():
    reports = []
    for __ in range(2):
        __s, system, recorder = run_traced(
            "miodb", n=512, value_size=1024, reads=64
        )
        samples = [(a.end, a.measured_s) for a in attribute_ops(recorder)]
        objective = SloObjective("op-latency", threshold_s=5e-6)
        end_s = system.clock.now
        monitor = SloMonitor(
            objective, [BurnRateRule(end_s / 50, end_s / 10, 2.0)]
        )
        reports.append((monitor.run(samples), rolling_series(samples, end_s, end_s / 10)))
    assert reports[0] == reports[1]
    # The capped-buffer miodb trace stalls hard enough to breach 5us.
    assert reports[0][0]["alerts"]


def test_rolling_series_empty_windows_report_none():
    series = rolling_series([], end_s=1.0, window_s=0.1, bins=4)
    assert len(series["rows"]) == 5
    assert all(row["p99_us"] is None for row in series["rows"])
    assert all(row["count"] == 0 for row in series["rows"])
    assert series["throughput_breaches"] == []


def test_rolling_series_counts_and_percentiles():
    samples = [(0.01 * (i + 1), 1e-4 * (i + 1)) for i in range(100)]
    series = rolling_series(samples, end_s=1.0, window_s=0.25, bins=4, p=50.0)
    by_t = {row["t_s"]: row for row in series["rows"]}
    assert by_t[0.0]["count"] == 0
    assert by_t[0.5]["count"] == 25  # samples in (0.25, 0.5]
    assert by_t[1.0]["count"] == 25
    assert by_t[1.0]["p50_us"] is not None


def test_rolling_series_flags_throughput_breaches():
    samples = [(0.01 * (i + 1), 1e-4) for i in range(50)]  # stop at 0.5s
    series = rolling_series(
        samples, end_s=1.0, window_s=0.25, bins=4, min_kiops=0.05
    )
    # After the load stops the windows empty out and undershoot the floor.
    assert any(b["t_s"] >= 0.75 for b in series["throughput_breaches"])
    # Leading edge before the first sample is not counted as a breach.
    assert all(b["t_s"] > 0.0 for b in series["throughput_breaches"])


def test_rolling_series_validation():
    with pytest.raises(ValueError):
        rolling_series([], end_s=1.0, window_s=0.0)
    with pytest.raises(ValueError):
        rolling_series([], end_s=1.0, window_s=0.1, bins=0)
