"""Unit tests for the KV store base: values, options, MemTable, API checks."""

import pytest

from repro.kvstore.memtable import MemTable, memtable_entries
from repro.kvstore.options import MB, StoreOptions
from repro.kvstore.values import SizedValue, value_nbytes
from repro.sim.rng import XorShiftRng


# ------------------------------------------------------------------ values


def test_value_nbytes_for_bytes():
    assert value_nbytes(b"hello") == 5
    assert value_nbytes(bytearray(b"abc")) == 3


def test_value_nbytes_for_str():
    assert value_nbytes("héllo") == len("héllo".encode("utf-8"))


def test_value_nbytes_for_sized_value():
    assert value_nbytes(SizedValue("tag", 4096)) == 4096


def test_value_nbytes_rejects_other_types():
    with pytest.raises(TypeError):
        value_nbytes(12345)


def test_sized_value_equality_and_hash():
    a = SizedValue("x", 10)
    b = SizedValue("x", 10)
    c = SizedValue("y", 10)
    assert a == b
    assert a != c
    assert hash(a) == hash(b)


def test_sized_value_rejects_negative():
    with pytest.raises(ValueError):
        SizedValue("x", -1)


# ----------------------------------------------------------------- options


def test_level_capacity_grows_by_fanout():
    opts = StoreOptions(sstable_bytes=MB, level_fanout=10)
    assert opts.level_capacity_bytes(1) == 10 * MB
    assert opts.level_capacity_bytes(2) == 100 * MB


def test_level0_capacity_from_slowdown_trigger():
    opts = StoreOptions(sstable_bytes=MB, l0_slowdown_tables=8)
    assert opts.level_capacity_bytes(0) == 8 * MB


# ---------------------------------------------------------------- memtable


def test_memtable_insert_and_get(system):
    table = MemTable(system, 1 << 20, XorShiftRng(1))
    cost = table.insert(b"k", 1, b"value", 5)
    assert cost > 0
    node, get_cost = table.get(b"k")
    assert node.value == b"value"
    assert get_cost > 0


def test_memtable_fills_up(system):
    table = MemTable(system, 1 << 10, XorShiftRng(1))
    i = 0
    while not table.is_full:
        table.insert(b"k%05d" % i, i + 1, b"v", 100)
        i += 1
    assert table.data_bytes >= (1 << 10) - 200


def test_memtable_immutable_rejects_inserts(system):
    table = MemTable(system, 1 << 20, XorShiftRng(1))
    table.mark_immutable()
    with pytest.raises(ValueError):
        table.insert(b"k", 1, b"v", 1)


def test_memtable_placement_affects_device(system):
    dram_table = MemTable(system, 1 << 20, XorShiftRng(1), placement="dram")
    assert system.dram.bytes_in_use >= 1 << 20
    nvm_before = system.nvm.bytes_in_use
    MemTable(system, 1 << 20, XorShiftRng(2), placement="nvm")
    assert system.nvm.bytes_in_use == nvm_before + (1 << 20)
    dram_table.release()


def test_memtable_nvm_insert_costs_more(system):
    dram_table = MemTable(system, 1 << 20, XorShiftRng(1))
    nvm_table = MemTable(system, 1 << 20, XorShiftRng(1), placement="nvm")
    dram_cost = dram_table.insert(b"k", 1, b"v", 4096)
    nvm_cost = nvm_table.insert(b"k", 1, b"v", 4096)
    assert nvm_cost > dram_cost


def test_memtable_rejects_bad_args(system):
    with pytest.raises(ValueError):
        MemTable(system, 0)
    with pytest.raises(ValueError):
        MemTable(system, 10, placement="tape")


def test_memtable_entries_sorted_and_sized(system):
    table = MemTable(system, 1 << 20, XorShiftRng(1))
    table.insert(b"b", 1, b"v1", 7)
    table.insert(b"a", 2, b"v2", 9)
    table.insert(b"a", 3, b"v3", 11)
    entries = memtable_entries(table)
    assert [(e[0], e[1]) for e in entries] == [(b"a", 3), (b"a", 2), (b"b", 1)]
    assert entries[0][3] == 11  # value_bytes round-trips


# ----------------------------------------------------------- api validation


def test_store_rejects_empty_keys(system, tiny_mio_options):
    from repro.core import MioDB

    store = MioDB(system, tiny_mio_options)
    with pytest.raises(ValueError):
        store.put(b"", b"v")
    with pytest.raises(ValueError):
        store.get("not-bytes")
    with pytest.raises(ValueError):
        store.scan(b"ok", -1)


def test_delete_then_get_returns_none(system, tiny_mio_options):
    from repro.core import MioDB

    store = MioDB(system, tiny_mio_options)
    store.put(b"k", b"v")
    store.delete(b"k")
    value, __ = store.get(b"k")
    assert value is None
