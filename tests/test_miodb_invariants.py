"""Run the MioDB invariant verifier across stressful scenarios."""

import pytest

from repro.core import MioDB, MioOptions, recover
from repro.core.verifier import InvariantViolation, verify_store
from repro.kvstore.values import SizedValue
from repro.mem.system import HybridMemorySystem
from repro.persist.crash import CrashInjector, SimulatedCrash
from repro.sim.rng import XorShiftRng

KB = 1 << 10


def build(memtable_kb=4, levels=4):
    system = HybridMemorySystem()
    store = MioDB(system, MioOptions(memtable_bytes=memtable_kb * KB,
                                     num_levels=levels))
    return store


def test_fresh_store_verifies():
    verify_store(build())


def test_invariants_hold_during_fill():
    store = build()
    for i in range(2500):
        store.put(b"key%06d" % ((i * 7919) % 600), SizedValue(i, 512))
        if i % 250 == 0:
            verify_store(store)
    verify_store(store)
    store.quiesce()
    verify_store(store)


def test_invariants_hold_with_deletes_and_overwrites():
    store = build(levels=3)
    rng = XorShiftRng(5)
    for i in range(2000):
        key = b"key%06d" % rng.next_below(300)
        if rng.next_below(5) == 0:
            store.delete(key)
        else:
            store.put(key, SizedValue(i, 512))
    verify_store(store)
    store.quiesce()
    verify_store(store)


def test_invariants_hold_after_recovery():
    system = HybridMemorySystem()
    injector = CrashInjector()
    store = MioDB(system, MioOptions(memtable_bytes=4 * KB, num_levels=3),
                  crash_injector=injector)
    injector.arm("put.after_wal", 900)
    try:
        for i in range(2000):
            store.put(b"key%06d" % (i % 400), SizedValue(i, 512))
    except SimulatedCrash:
        pass
    recovered, __ = recover(store)
    verify_store(recovered)
    for i in range(500):
        recovered.put(b"key%06d" % (i % 400), SizedValue(("post", i), 512))
    recovered.quiesce()
    verify_store(recovered)


def test_invariants_hold_in_ssd_mode():
    system = HybridMemorySystem.with_ssd()
    store = MioDB(system, MioOptions(memtable_bytes=4 * KB, num_levels=3,
                                     ssd_mode=True))
    for i in range(1500):
        store.put(b"key%06d" % (i % 300), SizedValue(i, 512))
    verify_store(store)
    store.quiesce()
    verify_store(store)


def test_verifier_detects_planted_age_inversion():
    store = build()
    for i in range(600):
        store.put(b"key%06d" % (i % 100), SizedValue(i, 512))
    store.quiesce()
    # plant a corruption: push an absurdly new version into an old source
    target = None
    for level_tables in store.levels:
        for pmtable in level_tables:
            target = pmtable
    if target is None:
        pytest.skip("no buffer table to corrupt at this scale")
    target.skiplist.insert(b"key%06d" % 1, store.seq + 999, b"bad", 3)
    store.memtable.insert(b"key%06d" % 1, store.seq + 1, b"ok", 2)
    with pytest.raises(InvariantViolation):
        verify_store(store)


def test_verifier_detects_planted_repository_tombstone():
    from repro.skiplist.node import TOMBSTONE

    store = build(levels=2)
    for i in range(800):
        store.put(b"key%06d" % (i % 200), SizedValue(i, 512))
    store.quiesce()
    if store.repository.entry_count == 0:
        pytest.skip("repository unused at this scale")
    store.repository.skiplist.insert(b"zzz", store.seq + 1, TOMBSTONE, 0)
    with pytest.raises(InvariantViolation):
        verify_store(store)
